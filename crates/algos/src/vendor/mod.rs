//! Machine-specific vendor-library analogues (paper Section 7).
//!
//! The paper compares its model-derived matrix multiplications against two
//! closed-source library routines. We implement algorithmic analogues on
//! the simulators:
//!
//! * [`maspar_matmul`] — the MPL `matmul` intrinsic, modelled as Cannon's
//!   algorithm on the xnet neighbour grid with the tuned local kernel.
//!   Neighbour shifts are nearly free on the SIMD xnet, so this *beats*
//!   the router-based model-derived codes by about the paper's 35%
//!   (Fig. 19);
//! * [`cmssl_matmul`] — CMSSL's `gen_matrix_mult` (no vector units),
//!   modelled as a SUMMA-style grid algorithm with word-granular
//!   broadcasts and a generic (non-assembly) inner kernel — which is why
//!   it *loses* to the model-derived code, peaking around 150 Mflops
//!   (Fig. 20).

use pcm_core::units::{matmul_flops, mflops, sqrt_exact};
use pcm_machines::Platform;
use pcm_sim::topology::Grid;

use crate::matmul::local_multiply;
use crate::regions;
use crate::run::{RunResult, RunStats};
use crate::verify::{random_matrix, spot_check_matmul};

/// Per-processor state of the grid algorithms.
#[derive(Clone, Debug, Default)]
struct GridMmState {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

const TAG_A: u32 = 0;
const TAG_B: u32 = 1;

/// The generic (portable C) kernel rate of CMSSL without vector units, in
/// µs per compound operation (≈ 3.5 Mflops — roughly half the tuned
/// assembly kernel).
pub const CMSSL_OP_TIME: f64 = 2.0 / 3.5;

/// Replaces the local A/B blocks with whichever shifted blocks arrived.
/// The two panels arrive on distinct tags; reading each stream through its
/// own filter lets the race analyzer prove the inboxes never alias.
fn absorb_shifted(ctx: &mut pcm_sim::Ctx<'_, GridMmState>) {
    let a_in: Option<Vec<f64>> = ctx.msgs_tagged(TAG_A).map(|m| m.as_f64s()).last();
    let b_in: Option<Vec<f64>> = ctx.msgs_tagged(TAG_B).map(|m| m.as_f64s()).last();
    if let Some(vals) = a_in {
        ctx.touch_write(regions::VENDOR_A);
        ctx.state.a = vals;
    }
    if let Some(vals) = b_in {
        ctx.touch_write(regions::VENDOR_B);
        ctx.state.b = vals;
    }
}

fn padded_block(m: &[f64], n: usize, r0: usize, c0: usize, bs: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; bs * bs];
    for r in 0..bs {
        if r0 + r >= n {
            break;
        }
        for c in 0..bs {
            if c0 + c >= n {
                break;
            }
            out[r * bs + c] = m[(r0 + r) * n + c0 + c];
        }
    }
    out
}

/// Cannon's algorithm on the MasPar xnet grid — the `matmul` intrinsic
/// analogue. Handles any `n` by padding blocks.
pub fn maspar_matmul(platform: &Platform, n: usize, seed: u64) -> RunResult {
    let p = platform.p();
    let side = sqrt_exact(p).expect("Cannon needs a square PE grid");
    let grid = Grid { side };
    let bs = n.div_ceil(side);

    let a = random_matrix(n, seed);
    let b = random_matrix(n, seed.wrapping_add(1));

    let states: Vec<GridMmState> = (0..p)
        .map(|pid| {
            let (r, c) = grid.coords(pid);
            GridMmState {
                a: padded_block(&a, n, r * bs, c * bs, bs),
                b: padded_block(&b, n, r * bs, c * bs, bs),
                c: vec![0.0; bs * bs],
            }
        })
        .collect();
    let mut machine = platform.machine(states, seed);

    // Skew: row r shifts A left by r; column c shifts B up by c, as
    // `side - 1` masked unit shifts. The SIMD xnet executes the A shift
    // and the B shift as two distinct plural operations, so they are two
    // supersteps here: merging them would drop a B block into the same
    // router round as a neighbour's A block (fan-in 2), which the
    // single-port xnet cannot accept — and would undercharge the shift.
    for round in 1..side {
        machine.superstep(move |ctx| {
            absorb_shifted(ctx); // B blocks of the previous round
            let (r, c) = grid.coords(ctx.pid());
            if r >= round {
                // shift A left by one (torus)
                let dst = grid.id(r, (c + side - 1) % side);
                ctx.touch_read(regions::VENDOR_A);
                let av = ctx.state.a.clone();
                ctx.send_xnet_f64_tagged(dst, TAG_A, &av);
            }
        });
        machine.superstep(move |ctx| {
            absorb_shifted(ctx); // A blocks of this round
            let (r, c) = grid.coords(ctx.pid());
            if c >= round {
                let dst = grid.id((r + side - 1) % side, c);
                ctx.touch_read(regions::VENDOR_B);
                let bv = ctx.state.b.clone();
                ctx.send_xnet_f64_tagged(dst, TAG_B, &bv);
            }
        });
    }
    // The last B shift is still in flight; land it before multiplying.
    machine.superstep(absorb_shifted);

    // side iterations: multiply-accumulate, then shift A left / B up by 1.
    for step in 0..side {
        machine.superstep(move |ctx| {
            ctx.touch_read(regions::VENDOR_A);
            ctx.touch_read(regions::VENDOR_B);
            ctx.touch_modify(regions::VENDOR_C);
            let st = &mut *ctx.state;
            let mut partial = vec![0.0f64; bs * bs];
            local_multiply(&st.a, &st.b, &mut partial, bs);
            for (acc, v) in st.c.iter_mut().zip(&partial) {
                *acc += v;
            }
            ctx.charge_matmul(bs, bs, bs);
            if step + 1 < side {
                let pid = ctx.pid();
                let (r, c) = grid.coords(pid);
                let av = ctx.state.a.clone();
                ctx.send_xnet_f64_tagged(grid.id(r, (c + side - 1) % side), TAG_A, &av);
                let bv = ctx.state.b.clone();
                ctx.send_xnet_f64_tagged(grid.id((r + side - 1) % side, c), TAG_B, &bv);
            }
        });
        if step + 1 < side {
            machine.superstep(absorb_shifted);
        }
    }

    finish(machine, &a, &b, n, side, bs, seed)
}

/// SUMMA-style `gen_matrix_mult` analogue on the CM-5: in each of `side`
/// steps the owner column broadcasts its `A` panel along the rows and the
/// owner row broadcasts its `B` panel down the columns — as serialized,
/// unpipelined point-to-point block sends — then every processor runs the
/// *generic* (portable C) kernel. Both choices keep it well under the
/// model-derived codes, as CMSSL measured.
pub fn cmssl_matmul(platform: &Platform, n: usize, seed: u64) -> RunResult {
    let p = platform.p();
    let side = sqrt_exact(p).expect("SUMMA needs a square grid");
    let grid = Grid { side };
    let bs = n.div_ceil(side);

    let a = random_matrix(n, seed);
    let b = random_matrix(n, seed.wrapping_add(1));
    let states: Vec<GridMmState> = (0..p)
        .map(|pid| {
            let (r, c) = grid.coords(pid);
            GridMmState {
                a: padded_block(&a, n, r * bs, c * bs, bs),
                b: padded_block(&b, n, r * bs, c * bs, bs),
                c: vec![0.0; bs * bs],
            }
        })
        .collect();
    let mut machine = platform.machine(states, seed);

    for step in 0..side {
        // Broadcast the step-th A panel along rows, B panel down columns.
        machine.superstep(move |ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(pid);
            if c == step {
                ctx.touch_read(regions::VENDOR_A);
                let av = ctx.state.a.clone();
                // Unstaggered: every owner walks the row left to right.
                for t in 0..side {
                    if t != c {
                        ctx.send_block_f64_tagged(grid.id(r, t), TAG_A, &av);
                    }
                }
            }
            if r == step {
                ctx.touch_read(regions::VENDOR_B);
                let bv = ctx.state.b.clone();
                for t in 0..side {
                    if t != r {
                        ctx.send_block_f64_tagged(grid.id(t, c), TAG_B, &bv);
                    }
                }
            }
        });
        machine.superstep(move |ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(pid);
            let pa = if c == step {
                ctx.touch_read(regions::VENDOR_A);
                ctx.state.a.clone()
            } else {
                ctx.msgs_tagged(TAG_A)
                    .map(|msg| msg.as_f64s())
                    .last()
                    .unwrap_or_default()
            };
            let pb = if r == step {
                ctx.touch_read(regions::VENDOR_B);
                ctx.state.b.clone()
            } else {
                ctx.msgs_tagged(TAG_B)
                    .map(|msg| msg.as_f64s())
                    .last()
                    .unwrap_or_default()
            };
            let mut partial = vec![0.0f64; bs * bs];
            local_multiply(&pa, &pb, &mut partial, bs);
            ctx.touch_modify(regions::VENDOR_C);
            for (acc, v) in ctx.state.c.iter_mut().zip(&partial) {
                *acc += v;
            }
            // Generic kernel: charged at the portable-C rate, not the
            // assembly kernel's.
            ctx.charge((bs as f64).powi(3) * CMSSL_OP_TIME);
        });
    }

    finish(machine, &a, &b, n, side, bs, seed)
}

fn finish(
    machine: pcm_sim::Machine<GridMmState>,
    a: &[f64],
    b: &[f64],
    n: usize,
    side: usize,
    bs: usize,
    seed: u64,
) -> RunResult {
    let grid = Grid { side };
    let time = machine.time();
    let breakdown = machine.breakdown();
    let mut c = vec![0.0f64; n * n];
    for (pid, st) in machine.states().iter().enumerate() {
        let (r, col) = grid.coords(pid);
        for i in 0..bs {
            let gr = r * bs + i;
            if gr >= n {
                break;
            }
            for j in 0..bs {
                let gc = col * bs + j;
                if gc >= n {
                    break;
                }
                c[gr * n + gc] = st.c[i * bs + j];
            }
        }
    }
    let rows = if n <= 256 { n } else { 8 };
    let verified = spot_check_matmul(a, b, &c, n, rows, seed ^ 0xFACE);
    let mf = mflops(matmul_flops(n), time);
    RunResult::new(time, breakdown, verified).with_stats(RunStats {
        mflops: mf,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cannon_computes_the_product() {
        let plat = Platform::maspar_with(16);
        let r = maspar_matmul(&plat, 20, 3); // padded blocks (20 / 4 = 5)
        assert!(r.verified);
        let r = maspar_matmul(&plat, 16, 3);
        assert!(r.verified);
    }

    #[test]
    fn summa_computes_the_product() {
        let plat = Platform::cm5_with(16);
        let r = cmssl_matmul(&plat, 24, 5);
        assert!(r.verified);
    }

    #[test]
    fn cannon_communication_is_cheap_on_the_xnet() {
        let plat = Platform::maspar_with(64);
        let r = maspar_matmul(&plat, 64, 7);
        assert!(r.verified);
        assert!(
            r.breakdown.comm_fraction() < 0.25,
            "xnet shifts should be a small fraction, got {}",
            r.breakdown.comm_fraction()
        );
    }

    #[test]
    fn skew_alignment_is_correct_for_asymmetric_matrices() {
        // A deliberately non-symmetric product catches skew mistakes.
        let plat = Platform::maspar_with(16);
        let r = maspar_matmul(&plat, 8, 11);
        assert!(r.verified);
    }
}
