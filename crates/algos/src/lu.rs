//! Blocked LU decomposition — an extension beyond the paper's three
//! problems.
//!
//! The paper motivates APSP by noting that its communication structure "is
//! similar to many other important algorithms such as LU decomposition"
//! (Section 4). This module makes that concrete: LU runs on the same
//! `sqrt(P) x sqrt(P)` grid with the same row/column broadcast skeleton —
//! iteration `k` broadcasts the pivot value, the multiplier column and the
//! pivot row, then every processor rank-1-updates its trailing block.
//!
//! The factorization is in-place Doolittle without pivoting; workloads are
//! made diagonally dominant so that is numerically safe. Every run is
//! verified against a sequential reference factorization.

use pcm_core::units::sqrt_exact;
use pcm_machines::Platform;
use pcm_sim::topology::Grid;

use crate::primitives::plan::staggered;
use crate::regions;
use crate::run::RunResult;

/// Word or block transfers for the broadcast traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuVariant {
    /// Word messages.
    Words,
    /// Block transfers.
    Blocks,
}

#[derive(Clone, Debug, Default)]
struct LuState {
    /// My `M x M` block of the (factorizing) matrix, row-major.
    a: Vec<f64>,
    /// Pivot value `a_kk` for the current iteration.
    pivot: f64,
    /// Multiplier column segment (length M, only rows > k meaningful).
    l_col: Vec<f64>,
    /// Pivot row segment (length M, only columns > k meaningful).
    u_row: Vec<f64>,
}

const TAG_PIVOT: u32 = 0;
const TAG_L: u32 = 1;
const TAG_U: u32 = 2;

fn send(
    ctx: &mut pcm_sim::Ctx<'_, LuState>,
    variant: LuVariant,
    dst: usize,
    tag: u32,
    vals: &[f64],
) {
    match variant {
        LuVariant::Blocks => ctx.send_block_f64_tagged(dst, tag, vals),
        LuVariant::Words => ctx.send_words_f64_tagged(dst, tag, vals),
    }
}

/// Sequential in-place Doolittle LU (no pivoting); returns the combined
/// `L\U` matrix (unit lower triangle implicit).
pub fn lu_reference(a: &[f64], n: usize) -> Vec<f64> {
    let mut m = a.to_vec();
    for k in 0..n {
        let pivot = m[k * n + k];
        assert!(
            pivot.abs() > 1e-12,
            "zero pivot at {k}: supply a diagonally dominant matrix"
        );
        for i in k + 1..n {
            let l = m[i * n + k] / pivot;
            m[i * n + k] = l;
            for j in k + 1..n {
                m[i * n + j] -= l * m[k * n + j];
            }
        }
    }
    m
}

/// A deterministic diagonally dominant test matrix.
pub fn dominant_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut a = crate::verify::random_matrix(n, seed);
    for i in 0..n {
        a[i * n + i] += n as f64;
    }
    a
}

/// Runs the blocked parallel LU and verifies the combined factor matrix
/// against the sequential reference.
///
/// # Panics
/// Panics unless the platform's processor count is a perfect square and
/// `n` is a multiple of `sqrt(P)`.
pub fn run(platform: &Platform, n: usize, variant: LuVariant, seed: u64) -> RunResult {
    let p = platform.p();
    let side = sqrt_exact(p).expect("LU needs a square processor grid");
    assert!(
        n.is_multiple_of(side),
        "matrix side {n} must be a multiple of sqrt(P)"
    );
    let grid = Grid { side };
    let m = n / side;

    let a0 = dominant_matrix(n, seed);
    let states: Vec<LuState> = (0..p)
        .map(|pid| {
            let (r, c) = grid.coords(pid);
            let mut block = Vec::with_capacity(m * m);
            for i in 0..m {
                let gr = r * m + i;
                block.extend_from_slice(&a0[gr * n + c * m..gr * n + c * m + m]);
            }
            LuState {
                a: block,
                ..Default::default()
            }
        })
        .collect();
    let mut machine = platform.machine(states, seed);

    for k in 0..n {
        let owner = k / m;
        let lk = k % m;

        // Superstep 1: the pivot owner broadcasts a_kk down its processor
        // column (the multiplier computers live there).
        machine.superstep(|ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(pid);
            if r == owner && c == owner {
                ctx.touch_read(regions::LU_BLOCK);
                let pivot = ctx.state.a[lk * m + lk];
                ctx.state.pivot = pivot;
                for t in staggered(r, side) {
                    let dst = grid.id(t, c);
                    if dst != pid {
                        send(ctx, variant, dst, TAG_PIVOT, &[pivot]);
                    }
                }
            }
        });

        // Superstep 2: column owners compute multipliers and broadcast
        // them along their rows; row owners broadcast the pivot row down
        // their columns.
        machine.superstep(|ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(pid);
            let incoming: Vec<f64> = ctx
                .msgs_tagged(TAG_PIVOT)
                .map(|msg| msg.word_f64())
                .collect();
            if let Some(&pv) = incoming.first() {
                ctx.state.pivot = pv;
            }
            if c == owner {
                // My block holds column segment k: rows r·m .. r·m+m.
                let pivot = ctx.state.pivot;
                let mut l = vec![0.0f64; m];
                #[allow(clippy::needless_range_loop)]
                for i in 0..m {
                    let gi = r * m + i;
                    if gi > k {
                        l[i] = ctx.state.a[i * m + lk] / pivot;
                    }
                }
                // Store multipliers in place and broadcast along the row.
                ctx.touch_modify(regions::LU_BLOCK);
                for (i, &li) in l.iter().enumerate() {
                    let gi = r * m + i;
                    if gi > k {
                        ctx.state.a[i * m + lk] = li;
                    }
                }
                ctx.charge_ops(m as u64);
                ctx.touch_write(regions::LU_LCOL);
                ctx.state.l_col = l.clone();
                for t in staggered(r, side) {
                    let dst = grid.id(r, t);
                    if dst != pid {
                        send(ctx, variant, dst, TAG_L, &l);
                    }
                }
            }
            if r == owner {
                let mut u = vec![0.0f64; m];
                #[allow(clippy::needless_range_loop)]
                for j in 0..m {
                    let gj = c * m + j;
                    if gj > k {
                        u[j] = ctx.state.a[lk * m + j];
                    }
                }
                ctx.touch_write(regions::LU_UROW);
                ctx.state.u_row = u.clone();
                for t in staggered(c, side) {
                    let dst = grid.id(t, c);
                    if dst != pid {
                        send(ctx, variant, dst, TAG_U, &u);
                    }
                }
            }
        });

        // Superstep 3: absorb the broadcasts and rank-1-update the
        // trailing submatrix.
        machine.superstep(|ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(pid);
            // The two panels travel on separate tags; read each stream
            // through its own filter so the analyzer can prove they never
            // alias.
            let l_in: Option<Vec<f64>> = ctx.msgs_tagged(TAG_L).map(|msg| msg.as_f64s()).last();
            let u_in: Option<Vec<f64>> = ctx.msgs_tagged(TAG_U).map(|msg| msg.as_f64s()).last();
            if let Some(vals) = l_in {
                ctx.touch_write(regions::LU_LCOL);
                ctx.state.l_col = vals;
            }
            if let Some(vals) = u_in {
                ctx.touch_write(regions::LU_UROW);
                ctx.state.u_row = vals;
            }
            ctx.touch_read(regions::LU_LCOL);
            ctx.touch_read(regions::LU_UROW);
            ctx.touch_modify(regions::LU_BLOCK);
            let st = &mut *ctx.state;
            if st.l_col.len() == m && st.u_row.len() == m {
                for i in 0..m {
                    let gi = r * m + i;
                    if gi <= k {
                        continue;
                    }
                    let li = st.l_col[i];
                    if li == 0.0 {
                        continue;
                    }
                    for j in 0..m {
                        let gj = c * m + j;
                        if gj > k {
                            st.a[i * m + j] -= li * st.u_row[j];
                        }
                    }
                }
            }
            st.l_col.clear();
            st.u_row.clear();
            ctx.charge_ops((m * m) as u64);
        });
    }

    let time = machine.time();
    // Reassemble the combined L\U matrix and verify.
    let mut result = vec![0.0f64; n * n];
    for (pid, st) in machine.states().iter().enumerate() {
        let (r, c) = grid.coords(pid);
        for i in 0..m {
            let gr = r * m + i;
            result[gr * n + c * m..gr * n + c * m + m].copy_from_slice(&st.a[i * m..(i + 1) * m]);
        }
    }
    let expect = lu_reference(&a0, n);
    let verified = result
        .iter()
        .zip(&expect)
        .all(|(&g, &e)| (g - e).abs() <= 1e-8 * (1.0 + e.abs()));
    RunResult::new(time, machine.breakdown(), verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lu_reconstructs_the_matrix() {
        let n = 8;
        let a = dominant_matrix(n, 3);
        let lu = lu_reference(&a, n);
        // Multiply L·U and compare with A.
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    s += if k <= j { l * u } else { 0.0 };
                }
                // Doolittle: A = L·U with unit diagonal L.
                let mut exact = 0.0;
                for k in 0..n {
                    let l = if k < i {
                        lu[i * n + k]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[k * n + j] } else { 0.0 };
                    exact += l * u;
                }
                let _ = s;
                assert!((exact - a[i * n + j]).abs() < 1e-8, "A[{i}][{j}] mismatch");
            }
        }
    }

    #[test]
    fn parallel_lu_matches_reference_on_all_platforms() {
        for plat in [
            Platform::gcel_with(16),
            Platform::cm5_with(16),
            Platform::maspar_with(16),
        ] {
            for variant in [LuVariant::Words, LuVariant::Blocks] {
                let r = run(&plat, 16, variant, 7);
                assert!(r.verified, "{} {variant:?} LU failed", plat.name());
            }
        }
    }

    #[test]
    fn larger_grid_and_matrix() {
        let r = run(&Platform::cm5(), 64, LuVariant::Blocks, 9);
        assert!(r.verified);
    }

    #[test]
    fn communication_structure_mirrors_apsp() {
        // Per iteration LU does two broadcasts plus a pivot send, like
        // APSP's two broadcasts: the communication share should be in the
        // same regime on a communication-dominated machine.
        let plat = Platform::gcel_with(16);
        let lu = run(&plat, 32, LuVariant::Words, 5);
        let apsp = crate::apsp::run(&plat, 32, crate::apsp::ApspVariant::Words, 5);
        assert!(lu.verified && apsp.verified);
        let ratio = lu.time / apsp.time;
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "LU/APSP time ratio = {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of sqrt(P)")]
    fn rejects_misaligned_sizes() {
        run(&Platform::cm5(), 30, LuVariant::Words, 0);
    }
}
