//! All-pairs shortest path: blocked parallel Floyd (paper Section 4.4).
//!
//! The `N x N` distance matrix is split into `P` blocks of `M x M`
//! (`M = N/sqrt(P)`) on a `sqrt(P) x sqrt(P)` processor grid. Iteration `k`
//! broadcasts the active column `D[*,k]` along the rows and the active row
//! `D[k,*]` along the columns, then every processor relaxes its block:
//! `D[i,j] = min(D[i,j], X[i] + Y[j])`.
//!
//! Two broadcast realizations, following the paper:
//!
//! * **pipelined machines** (GCel, CM-5): a two-superstep scatter +
//!   all-gather, costing `2·(g·M + L)` per broadcast. The scatter
//!   superstep has only `sqrt(P)` senders — the unbalanced pattern behind
//!   the `g_mscat` refinement of Fig. 13;
//! * **MP-BSP machines** (MasPar): the scatter runs as staggered
//!   1-relations; when `M < sqrt(P)` a doubling phase replicates each
//!   element to `sqrt(P)/M` processors (`log(sqrt(P)/M)` supersteps — the
//!   `sum_i T_unb(2^i N)` term of the E-BSP analysis), and the gather is a
//!   ring rotation over the piece holders (`M` communication steps — the
//!   `M·T_unb(P)` term of Fig. 12).

use pcm_core::units::{log2_exact, sqrt_exact, tag_u32};
use pcm_machines::Platform;
use pcm_sim::topology::Grid;

use crate::primitives::embed::Embedding;
use crate::primitives::plan::{chunk, staggered};
use crate::regions;
use crate::run::RunResult;
use crate::verify::{check_distances, floyd_reference};

/// Word or block transfers for the broadcast traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApspVariant {
    /// Word messages (BSP / MP-BSP / E-BSP evaluation).
    Words,
    /// Block transfers (MP-BPRAM).
    Blocks,
}

#[derive(Clone, Debug, Default)]
struct ApspState {
    /// My `M x M` block, row-major.
    d: Vec<f64>,
    /// Assembled active column segment (length M).
    x: Vec<f64>,
    /// Assembled active row segment (length M).
    y: Vec<f64>,
    /// The piece currently travelling the row ring (index, values).
    x_piece: Option<(usize, Vec<f64>)>,
    /// The piece currently travelling the column ring.
    y_piece: Option<(usize, Vec<f64>)>,
}

const TAG_COL: u32 = 0;

fn send(
    ctx: &mut pcm_sim::Ctx<'_, ApspState>,
    variant: ApspVariant,
    dst: usize,
    tag: u32,
    vals: &[f64],
) {
    match variant {
        ApspVariant::Blocks => ctx.send_block_f64_tagged(dst, tag, vals),
        ApspVariant::Words => ctx.send_words_f64_tagged(dst, tag, vals),
    }
}

/// Runs blocked Floyd on a deterministic random digraph and verifies the
/// full result against the sequential reference.
///
/// # Panics
/// Panics unless the platform's processor count is a perfect square and
/// `n` is a multiple of `sqrt(P)`.
pub fn run(platform: &Platform, n: usize, variant: ApspVariant, seed: u64) -> RunResult {
    let p = platform.p();
    let side = sqrt_exact(p).expect("APSP needs a square processor grid");
    assert!(
        n.is_multiple_of(side),
        "graph size {n} must be a multiple of sqrt(P) = {side}"
    );
    let grid = Grid { side };
    let m = n / side;
    let pipelining = platform.model_params().memory_pipelining;
    // Blocked grid layouts do not align with the MasPar's router clusters
    // (see `primitives::embed`); pipelined machines keep the natural
    // embedding, which also preserves mesh locality on the GCel.
    let embed = if pipelining {
        Embedding::identity(p)
    } else {
        Embedding::scrambled(p, seed ^ 0xA9_5D)
    };
    let embed = &embed;

    let mut rng = pcm_core::rng::seeded(seed);
    let d0 = pcm_core::rng::random_digraph(n, 0.25, 100.0, &mut rng);

    let states: Vec<ApspState> = (0..p)
        .map(|pid| {
            let (r, c) = grid.coords(embed.to_logical(pid));
            let mut block = Vec::with_capacity(m * m);
            for i in 0..m {
                let gr = r * m + i;
                block.extend_from_slice(&d0[gr * n + c * m..gr * n + c * m + m]);
            }
            ApspState {
                d: block,
                ..Default::default()
            }
        })
        .collect();

    let mut machine = platform.machine(states, seed);

    for k in 0..n {
        let owner = k / m; // processor column (resp. row) holding k
        let local_k = k % m;

        // Superstep 1: scatter. The column owners split the active column
        // into pieces across their row; the row owners likewise down their
        // column. Only 2·sqrt(P) processors send.
        machine.superstep(|ctx| {
            let pid = ctx.pid();
            let (r, c) = grid.coords(embed.to_logical(pid));
            ctx.state.x_piece = None;
            ctx.state.y_piece = None;
            if c == owner {
                let seg: Vec<f64> = (0..m).map(|i| ctx.state.d[i * m + local_k]).collect();
                for t in staggered(r, side) {
                    let piece = &seg[chunk(m, side, t)];
                    if piece.is_empty() {
                        continue;
                    }
                    let dst = embed.to_machine(grid.id(r, t));
                    if dst == pid {
                        ctx.state.x_piece = Some((t, piece.to_vec()));
                    } else {
                        send(ctx, variant, dst, 2 * tag_u32(t), piece);
                    }
                }
            }
            if r == owner {
                let seg: Vec<f64> = ctx.state.d[local_k * m..(local_k + 1) * m].to_vec();
                for t in staggered(c, side) {
                    let piece = &seg[chunk(m, side, t)];
                    if piece.is_empty() {
                        continue;
                    }
                    let dst = embed.to_machine(grid.id(t, c));
                    if dst == pid {
                        ctx.state.y_piece = Some((t, piece.to_vec()));
                    } else {
                        send(ctx, variant, dst, 2 * tag_u32(t) + 1, piece);
                    }
                }
            }
        });

        // Superstep 2: absorb the scattered pieces, reset the assembly
        // buffers.
        machine.superstep(|ctx| {
            ctx.touch_write(regions::APSP_X);
            ctx.touch_write(regions::APSP_Y);
            ctx.state.x = vec![f64::INFINITY; m];
            ctx.state.y = vec![f64::INFINITY; m];
            absorb_pieces(ctx, m, side);
            // Own pieces (set during the scatter) also enter the assembly.
            let x_piece = ctx.state.x_piece.clone();
            if let Some((idx, vals)) = x_piece {
                ctx.state.x[chunk(m, side, idx)].copy_from_slice(&vals);
            }
            let y_piece = ctx.state.y_piece.clone();
            if let Some((idx, vals)) = y_piece {
                ctx.state.y[chunk(m, side, idx)].copy_from_slice(&vals);
            }
        });

        if pipelining {
            // All-gather in one superstep: everyone re-broadcasts its piece
            // along the row / column, then relaxes.
            machine.superstep(|ctx| {
                let pid = ctx.pid();
                let (r, c) = grid.coords(embed.to_logical(pid));
                let x_piece = ctx.state.x_piece.take();
                if let Some((idx, vals)) = x_piece {
                    for t in staggered(c, side) {
                        let dst = embed.to_machine(grid.id(r, t));
                        if dst != pid {
                            send(ctx, variant, dst, 2 * tag_u32(idx), &vals);
                        }
                    }
                }
                let y_piece = ctx.state.y_piece.take();
                if let Some((idx, vals)) = y_piece {
                    for t in staggered(r, side) {
                        let dst = embed.to_machine(grid.id(t, c));
                        if dst != pid {
                            send(ctx, variant, dst, 2 * tag_u32(idx) + 1, &vals);
                        }
                    }
                }
            });
            machine.superstep(|ctx| {
                absorb_pieces(ctx, m, side);
                relax(ctx, m);
            });
        } else {
            // MasPar path: doubling (if M < sqrt(P)) then ring rotations.
            let pieces = m.min(side);
            assert!(
                side.is_multiple_of(pieces) && (side / pieces).is_power_of_two(),
                "the doubling phase needs M to divide sqrt(P) as a power of                  two when M < sqrt(P); choose N so that M = N/sqrt(P) is a                  power of two (got M = {m}, sqrt(P) = {side})"
            );
            let repl = side / pieces; // power of two
            for j in 0..log2_exact(repl) {
                let span = pieces << j;
                machine.superstep(move |ctx| {
                    absorb_pieces(ctx, m, side);
                    let pid = ctx.pid();
                    let (r, c) = grid.coords(embed.to_logical(pid));
                    if c < span {
                        let x_piece = ctx.state.x_piece.clone();
                        if let Some((idx, vals)) = x_piece {
                            send(
                                ctx,
                                variant,
                                embed.to_machine(grid.id(r, c + span)),
                                2 * tag_u32(idx),
                                &vals,
                            );
                        }
                    }
                    if r < span {
                        let y_piece = ctx.state.y_piece.clone();
                        if let Some((idx, vals)) = y_piece {
                            send(
                                ctx,
                                variant,
                                embed.to_machine(grid.id(r + span, c)),
                                2 * tag_u32(idx) + 1,
                                &vals,
                            );
                        }
                    }
                });
            }
            // Ring rotations over the subgroup of `pieces` consecutive
            // holders: pass the current piece one step around, absorbing
            // whatever arrived.
            for _rot in 0..pieces.saturating_sub(1) {
                machine.superstep(move |ctx| {
                    absorb_pieces(ctx, m, side);
                    let pid = ctx.pid();
                    let (r, c) = grid.coords(embed.to_logical(pid));
                    let bs_c = (c / pieces) * pieces;
                    let next_c = bs_c + (c - bs_c + 1) % pieces;
                    let x_piece = ctx.state.x_piece.clone();
                    if let Some((idx, vals)) = x_piece {
                        send(
                            ctx,
                            variant,
                            embed.to_machine(grid.id(r, next_c)),
                            2 * tag_u32(idx),
                            &vals,
                        );
                    }
                    let bs_r = (r / pieces) * pieces;
                    let next_r = bs_r + (r - bs_r + 1) % pieces;
                    let y_piece = ctx.state.y_piece.clone();
                    if let Some((idx, vals)) = y_piece {
                        send(
                            ctx,
                            variant,
                            embed.to_machine(grid.id(next_r, c)),
                            2 * tag_u32(idx) + 1,
                            &vals,
                        );
                    }
                });
            }
            machine.superstep(|ctx| {
                absorb_pieces(ctx, m, side);
                ctx.state.x_piece = None;
                ctx.state.y_piece = None;
                relax(ctx, m);
            });
        }
    }

    let time = machine.time();
    // Reconstruct the distance matrix and verify.
    let mut result = vec![0.0f64; n * n];
    for (pid, st) in machine.states().iter().enumerate() {
        let (r, c) = grid.coords(embed.to_logical(pid));
        for i in 0..m {
            let gr = r * m + i;
            result[gr * n + c * m..gr * n + c * m + m].copy_from_slice(&st.d[i * m..(i + 1) * m]);
        }
    }
    let expect = floyd_reference(&d0, n);
    let verified = check_distances(&expect, &result);
    RunResult::new(time, machine.breakdown(), verified)
}

/// Absorbs scatter/ring/doubling deliveries: updates the travelling piece
/// and accumulates it into the assembled `x`/`y`. Tags encode
/// `2·piece_index + axis` with axis 0 = column (X), 1 = row (Y).
fn absorb_pieces(ctx: &mut pcm_sim::Ctx<'_, ApspState>, m: usize, side: usize) {
    let incoming: Vec<(u32, Vec<f64>)> = ctx
        .msgs()
        .iter()
        .map(|msg| (msg.tag, msg.as_f64s()))
        .collect();
    if !incoming.is_empty() {
        ctx.touch_modify(regions::APSP_X);
        ctx.touch_modify(regions::APSP_Y);
    }
    for (tag, vals) in incoming {
        let idx = (tag / 2) as usize;
        if tag % 2 == TAG_COL {
            ctx.state.x[chunk(m, side, idx)].copy_from_slice(&vals);
            ctx.state.x_piece = Some((idx, vals));
        } else {
            ctx.state.y[chunk(m, side, idx)].copy_from_slice(&vals);
            ctx.state.y_piece = Some((idx, vals));
        }
    }
}

/// The Floyd relaxation of the local block, charged at `alpha` per entry.
fn relax(ctx: &mut pcm_sim::Ctx<'_, ApspState>, m: usize) {
    ctx.touch_read(regions::APSP_X);
    ctx.touch_read(regions::APSP_Y);
    ctx.touch_modify(regions::APSP_DIST);
    let st = &mut *ctx.state;
    for i in 0..m {
        let xi = st.x[i];
        if !xi.is_finite() {
            continue;
        }
        let row = &mut st.d[i * m..(i + 1) * m];
        for (j, cell) in row.iter_mut().enumerate() {
            let alt = xi + st.y[j];
            if alt < *cell {
                *cell = alt;
            }
        }
    }
    ctx.charge_ops((m * m) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_shortest_paths_on_all_platforms() {
        for plat in [
            Platform::gcel_with(16),
            Platform::cm5_with(16),
            Platform::maspar_with(16),
        ] {
            let r = run(&plat, 32, ApspVariant::Words, 3);
            assert!(r.verified, "{} APSP failed", plat.name());
        }
    }

    #[test]
    fn maspar_small_m_doubling_and_ring() {
        // 16 PEs -> side 4; n = 8 -> M = 2 < 4: doubling active.
        let r = run(&Platform::maspar_with(16), 8, ApspVariant::Words, 11);
        assert!(r.verified);
        // M >= side: pure ring.
        let r = run(&Platform::maspar_with(16), 32, ApspVariant::Words, 11);
        assert!(r.verified);
    }

    #[test]
    fn maspar_full_size_m_below_side() {
        // The paper's regime: P = 1024, N = 128 -> M = 4 < 32.
        let r = run(&Platform::maspar(), 128, ApspVariant::Words, 5);
        assert!(r.verified);
    }

    #[test]
    fn block_variant_matches_too() {
        let r = run(&Platform::gcel_with(16), 32, ApspVariant::Blocks, 5);
        assert!(r.verified);
    }

    #[test]
    fn small_m_case_on_pipelined_machine() {
        // M = 32/8 = 4 < sqrt(P) = 8: pieces are sparse but correct.
        let r = run(&Platform::cm5(), 32, ApspVariant::Words, 7);
        assert!(r.verified);
    }

    #[test]
    #[should_panic(expected = "multiple of sqrt(P)")]
    fn rejects_misaligned_graphs() {
        run(&Platform::cm5(), 30, ApspVariant::Words, 0);
    }

    #[test]
    fn deterministic() {
        let a = run(&Platform::gcel_with(16), 16, ApspVariant::Words, 9);
        let b = run(&Platform::gcel_with(16), 16, ApspVariant::Words, 9);
        assert_eq!(a.time, b.time);
    }
}
