//! Logical-to-physical processor embeddings.
//!
//! The MasPar experiments in the paper show that the router priced the
//! cube-structured matmul phases and the grid-structured APSP broadcasts
//! like *random* permutations (the MP-BSP predictions with `g + L` per
//! word matched within 14%, and the APSP gather matched `M·T_unb(P)`),
//! while the bit-flip pattern of bitonic sort — addressed directly through
//! PE-number bits — was ~2x cheaper. MPL's virtual-processor addressing
//! evidently did not preserve router-cluster adjacency for the blocked
//! layouts.
//!
//! We model that with an explicit [`Embedding`]: hypercube algorithms use
//! the identity (PE-number) embedding; blocked cube/grid algorithms on the
//! MasPar use a seeded scrambled embedding, which makes their superstep
//! patterns cost what the paper measured.

use pcm_core::rng::{random_permutation, seeded};

/// A bijection between logical processor ids and machine PE ids.
#[derive(Clone, Debug)]
pub struct Embedding {
    fwd: Vec<usize>,
    inv: Vec<usize>,
}

impl Embedding {
    /// The identity embedding: logical id = machine id.
    pub fn identity(p: usize) -> Self {
        Embedding {
            fwd: (0..p).collect(),
            inv: (0..p).collect(),
        }
    }

    /// A deterministic scrambled embedding.
    pub fn scrambled(p: usize, seed: u64) -> Self {
        let fwd = random_permutation(p, &mut seeded(seed));
        let mut inv = vec![0usize; p];
        for (logical, &machine) in fwd.iter().enumerate() {
            inv[machine] = logical;
        }
        Embedding { fwd, inv }
    }

    /// Machine PE of a logical processor.
    #[inline]
    pub fn to_machine(&self, logical: usize) -> usize {
        self.fwd[logical]
    }

    /// Logical processor of a machine PE.
    #[inline]
    pub fn to_logical(&self, machine: usize) -> usize {
        self.inv[machine]
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// `true` for zero processors (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let e = Embedding::identity(8);
        for i in 0..8 {
            assert_eq!(e.to_machine(i), i);
            assert_eq!(e.to_logical(i), i);
        }
    }

    #[test]
    fn scrambled_is_a_bijection() {
        let e = Embedding::scrambled(64, 5);
        let mut seen = [false; 64];
        for i in 0..64 {
            let m = e.to_machine(i);
            assert!(!seen[m]);
            seen[m] = true;
            assert_eq!(e.to_logical(m), i, "inverse round trip");
        }
        assert_eq!(e.len(), 64);
        assert!(!e.is_empty());
    }

    #[test]
    fn scrambled_is_deterministic_per_seed() {
        let a = Embedding::scrambled(32, 9);
        let b = Embedding::scrambled(32, 9);
        let c = Embedding::scrambled(32, 10);
        assert_eq!(a.fwd, b.fwd);
        assert_ne!(a.fwd, c.fwd);
    }
}
