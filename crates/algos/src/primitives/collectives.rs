//! Standalone collective operations on a simulated machine.
//!
//! These are the BSP communication primitives of the paper's reference
//! \[16\] (Juurlink & Wijshoff, "Communication Primitives for BSP
//! Computers"), implemented over a simple word-vector state. The
//! algorithms embed specialized copies of these patterns; the standalone
//! versions exist so the primitives can be measured and tested in
//! isolation (and they power the `model_shootout` example).

use pcm_core::units::tag_u32;
use pcm_machines::Platform;
use pcm_sim::Machine;

use super::plan::{chunk, staggered};
use crate::regions;

/// State for the standalone collectives: each processor holds a vector of
/// words.
#[derive(Clone, Debug, Default)]
pub struct CollState {
    /// Local data.
    pub data: Vec<u32>,
    /// Result buffer.
    pub out: Vec<u32>,
}

/// Builds a machine whose processor `i` holds `data[i]`.
pub fn machine_with(platform: &Platform, data: Vec<Vec<u32>>, seed: u64) -> Machine<CollState> {
    let states = data
        .into_iter()
        .map(|d| CollState {
            data: d,
            out: Vec::new(),
        })
        .collect();
    platform.machine(states, seed)
}

/// Two-phase broadcast of `root`'s vector to every processor (scatter +
/// all-gather), the structure used for the APSP row/column broadcasts:
/// cost `2·(g·M + L)` instead of the naive `g·M·P + L`.
pub fn broadcast(machine: &mut Machine<CollState>, root: usize) {
    let p = machine.nprocs();
    // Phase 1: root scatters pieces.
    machine.superstep(move |ctx| {
        if ctx.pid() == root {
            ctx.touch_read(regions::COLL_DATA);
            let data = ctx.state.data.clone();
            let m = data.len();
            ctx.touch_write(regions::COLL_OUT);
            for t in staggered(root, p) {
                let piece = &data[chunk(m, p, t)];
                if t == root {
                    ctx.state.out = piece.to_vec();
                } else if !piece.is_empty() {
                    ctx.send_words_u32(t, piece);
                }
            }
        }
    });
    // Phase 2: everyone re-broadcasts its piece (tag = piece index).
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        let piece: Vec<u32> = if pid == root {
            ctx.touch_read(regions::COLL_OUT);
            std::mem::take(&mut ctx.state.out)
        } else {
            ctx.msgs().iter().flat_map(|m| m.as_u32s()).collect()
        };
        for t in staggered(pid, p) {
            if t != pid && !piece.is_empty() {
                ctx.send_words_u32_tagged(t, tag_u32(pid), &piece);
            }
        }
        ctx.touch_write(regions::COLL_OUT);
        ctx.state.out = piece;
    });
    // Phase 3: assemble.
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        // Determine the total length from all pieces.
        let mut pieces: Vec<(usize, Vec<u32>)> = ctx
            .msgs()
            .iter()
            .map(|m| (m.tag as usize, m.as_u32s()))
            .collect();
        ctx.touch_modify(regions::COLL_OUT);
        pieces.push((pid, ctx.state.out.clone()));
        pieces.sort_by_key(|(idx, _)| *idx);
        ctx.state.out = pieces.into_iter().flat_map(|(_, v)| v).collect();
    });
}

/// All-gather: every processor ends with the concatenation of all
/// processors' vectors in pid order.
pub fn all_gather(machine: &mut Machine<CollState>) {
    let p = machine.nprocs();
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        ctx.touch_read(regions::COLL_DATA);
        let data = ctx.state.data.clone();
        for t in staggered(pid, p) {
            if t != pid && !data.is_empty() {
                ctx.send_words_u32_tagged(t, tag_u32(pid), &data);
            }
        }
    });
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        let mut pieces: Vec<(usize, Vec<u32>)> =
            ctx.msgs().iter().map(|m| (m.src, m.as_u32s())).collect();
        ctx.touch_read(regions::COLL_DATA);
        pieces.push((pid, ctx.state.data.clone()));
        pieces.sort_by_key(|(idx, _)| *idx);
        ctx.touch_write(regions::COLL_OUT);
        ctx.state.out = pieces.into_iter().flat_map(|(_, v)| v).collect();
    });
}

/// Multi-scan (the paper's `T_scan = 2·(g·P + L)` primitive): processor
/// `i` holds a vector `v_i` of length `P`; afterwards `out[j]` on
/// processor `i` is `sum_{i' < i} v_{i'}[j]` — the exclusive prefix sum
/// across processors, per component. This is what sample sort uses to
/// compute receive addresses.
pub fn multi_scan(machine: &mut Machine<CollState>) {
    let p = machine.nprocs();
    // Phase 1: transpose — component j goes to processor j.
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        ctx.touch_read(regions::COLL_DATA);
        let data = ctx.state.data.clone();
        assert_eq!(data.len(), p, "multi_scan needs a P-vector per processor");
        for j in staggered(pid, p) {
            if j != pid {
                ctx.send_word_u32(j, data[j]);
            }
        }
    });
    // Phase 2: prefix-sum locally, send each source its prefix.
    machine.superstep(move |ctx| {
        let pid = ctx.pid();
        let mut comps = vec![0u32; p];
        ctx.touch_read(regions::COLL_DATA);
        comps[pid] = ctx.state.data[pid];
        for msg in ctx.msgs() {
            comps[msg.src] = msg.word_u32();
        }
        let mut acc = 0u32;
        let mut prefix = vec![0u32; p];
        for i in 0..p {
            prefix[i] = acc;
            acc += comps[i];
        }
        for i in staggered(pid, p) {
            if i != pid {
                ctx.send_word_u32(i, prefix[i]);
            }
        }
        ctx.touch_write(regions::COLL_OUT);
        ctx.state.out = vec![0; p];
        ctx.state.out[pid] = prefix[pid];
    });
    // Phase 3: collect.
    machine.superstep(move |ctx| {
        let incoming: Vec<(usize, u32)> =
            ctx.msgs().iter().map(|m| (m.src, m.word_u32())).collect();
        ctx.touch_modify(regions::COLL_OUT);
        for (src, v) in incoming {
            ctx.state.out[src] = v;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plat() -> Platform {
        Platform::cm5_with(8)
    }

    #[test]
    fn broadcast_delivers_roots_vector() {
        let p = 8;
        let data: Vec<Vec<u32>> = (0..p)
            .map(|i| {
                if i == 3 {
                    (100..116).collect()
                } else {
                    vec![0; 16]
                }
            })
            .collect();
        let mut m = machine_with(&plat(), data, 1);
        broadcast(&mut m, 3);
        for st in m.states() {
            assert_eq!(st.out, (100..116).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn broadcast_with_short_vectors() {
        // Fewer items than processors: some pieces are empty.
        let p = 8;
        let data: Vec<Vec<u32>> = (0..p)
            .map(|i| if i == 0 { vec![7, 8, 9] } else { vec![] })
            .collect();
        let mut m = machine_with(&plat(), data, 2);
        broadcast(&mut m, 0);
        for st in m.states() {
            assert_eq!(st.out, vec![7, 8, 9]);
        }
    }

    #[test]
    fn all_gather_concatenates_in_pid_order() {
        let p = 8;
        let data: Vec<Vec<u32>> = (0..p as u32).map(|i| vec![i * 2, i * 2 + 1]).collect();
        let mut m = machine_with(&plat(), data, 3);
        all_gather(&mut m);
        let expect: Vec<u32> = (0..16).collect();
        for st in m.states() {
            assert_eq!(st.out, expect);
        }
    }

    #[test]
    fn multi_scan_computes_exclusive_prefixes() {
        let p = 8usize;
        // v_i[j] = i + j
        let data: Vec<Vec<u32>> = (0..p)
            .map(|i| (0..p).map(|j| tag_u32(i + j)).collect())
            .collect();
        let mut m = machine_with(&plat(), data, 4);
        multi_scan(&mut m);
        for (i, st) in m.states().iter().enumerate() {
            for j in 0..p {
                let expect: u32 = (0..i).map(|ip| tag_u32(ip + j)).sum();
                assert_eq!(st.out[j], expect, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn broadcast_cost_is_two_phase_not_linear_in_p() {
        // On the CM-5 the two-phase broadcast of M words costs about
        // 2·(g·M + L); a naive root-sends-all would cost g·M·(P-1).
        let p = 64;
        let m_words = 640usize;
        let data: Vec<Vec<u32>> = (0..p)
            .map(|i| if i == 0 { vec![1; m_words] } else { vec![] })
            .collect();
        let mut m = machine_with(&Platform::cm5(), data, 5);
        broadcast(&mut m, 0);
        let t = m.time().as_micros();
        let naive = 9.1 * (m_words * (p - 1)) as f64;
        assert!(t < naive / 4.0, "two-phase broadcast {t} vs naive {naive}");
    }
}
