//! Communication primitives: pure planning helpers ([`plan`]) and
//! standalone collectives ([`collectives`]).

pub mod collectives;
pub mod embed;
pub mod plan;
