//! Pure communication-planning helpers shared by the algorithms.
//!
//! Staggering — starting each processor's send sequence at a different
//! offset — is the paper's fix for the CM-5 receiver-contention error
//! (Fig. 4) and is mandatory under MP-BSP to avoid concurrent writes.

/// The staggered order in which a processor with offset `start` visits
/// `count` targets: `start, start+1, ..., start+count-1 (mod count)`.
pub fn staggered(start: usize, count: usize) -> impl Iterator<Item = usize> {
    (0..count).map(move |t| (start + t) % count)
}

/// Splits `n` items into `p` contiguous chunks as evenly as possible;
/// returns the half-open range of chunk `i`.
pub fn chunk(n: usize, p: usize, i: usize) -> std::ops::Range<usize> {
    assert!(i < p);
    let base = n / p;
    let extra = n % p;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

/// The inverse of [`chunk`]: which chunk owns item `idx`.
pub fn chunk_owner(n: usize, p: usize, idx: usize) -> usize {
    assert!(idx < n);
    let base = n / p;
    let extra = n % p;
    let boundary = extra * (base + 1);
    if idx < boundary {
        idx / (base + 1)
    } else {
        extra + (idx - boundary) / base.max(1)
    }
}

/// Given sorted `keys` and sorted `splitters`, counts how many keys fall
/// into each of the `splitters.len() + 1` buckets (bucket `b` holds keys in
/// `[splitters[b-1], splitters[b])`). Linear time, as in the paper's
/// `Theta(M + P)` bucketing step.
pub fn bucket_counts(keys: &[u32], splitters: &[u32]) -> Vec<usize> {
    let mut counts = vec![0usize; splitters.len() + 1];
    let mut b = 0usize;
    for &k in keys {
        while b < splitters.len() && k >= splitters[b] {
            b += 1;
        }
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_visits_everything_once() {
        let order: Vec<usize> = staggered(2, 5).collect();
        assert_eq!(order, vec![2, 3, 4, 0, 1]);
        let mut seen = order;
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn staggered_offsets_form_permutations_per_round() {
        // In round t, processors with distinct offsets hit distinct targets.
        let q = 7;
        for t in 0..q {
            let mut targets: Vec<usize> = (0..q)
                .map(|pid| staggered(pid, q).nth(t).unwrap())
                .collect();
            targets.sort_unstable();
            assert_eq!(targets, (0..q).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunks_cover_exactly() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 8), (100, 9), (0, 4)] {
            let mut covered = 0;
            for i in 0..p {
                let r = chunk(n, p, i);
                assert_eq!(r.start, covered, "chunks are contiguous");
                covered = r.end;
            }
            assert_eq!(covered, n, "chunks cover all items");
        }
    }

    #[test]
    fn chunk_owner_matches_chunk() {
        for (n, p) in [(10usize, 3usize), (7, 7), (100, 9), (64, 8)] {
            for idx in 0..n {
                let owner = chunk_owner(n, p, idx);
                assert!(chunk(n, p, owner).contains(&idx), "n={n} p={p} idx={idx}");
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Round trip across the full (n, p) grid, including p > n (where
        /// trailing chunks are empty): every item is owned by exactly the
        /// chunk whose range contains it.
        #[test]
        fn chunk_owner_roundtrips_for_every_index(n in 0usize..120, p in 1usize..40) {
            for idx in 0..n {
                let owner = chunk_owner(n, p, idx);
                proptest::prop_assert!(owner < p, "owner {owner} out of range");
                let r = chunk(n, p, owner);
                proptest::prop_assert!(
                    r.contains(&idx),
                    "n={} p={} idx={} owner={} range={:?}", n, p, idx, owner, r
                );
            }
            // The chunks tile 0..n: lengths sum to n and starts are sorted.
            let total: usize = (0..p).map(|i| chunk(n, p, i).len()).sum();
            proptest::prop_assert_eq!(total, n);
        }

        /// Chunk sizes are balanced: every chunk holds floor(n/p) or
        /// ceil(n/p) items, and the large chunks come first.
        #[test]
        fn chunks_are_balanced(n in 0usize..120, p in 1usize..40) {
            let base = n / p;
            let mut seen_small = false;
            for i in 0..p {
                let len = chunk(n, p, i).len();
                proptest::prop_assert!(len == base || len == base + 1, "len {len}");
                if len == base {
                    seen_small = true;
                } else {
                    proptest::prop_assert!(!seen_small, "large chunk after a small one");
                }
            }
        }

        /// `bucket_counts` agrees with the obvious O(n·s) reference on
        /// sorted inputs, and the counts sum to the key count.
        #[test]
        fn bucket_counts_match_naive_reference(
            mut keys in proptest::collection::vec(0u32..64, 0..80),
            mut splitters in proptest::collection::vec(0u32..64, 0..12),
        ) {
            keys.sort_unstable();
            splitters.sort_unstable();
            splitters.dedup();
            let fast = bucket_counts(&keys, &splitters);
            // Naive reference: for each key, scan all splitters.
            let mut naive = vec![0usize; splitters.len() + 1];
            for &k in &keys {
                let b = splitters.iter().take_while(|&&s| k >= s).count();
                naive[b] += 1;
            }
            proptest::prop_assert_eq!(&fast, &naive);
            proptest::prop_assert_eq!(fast.iter().sum::<usize>(), keys.len());
        }
    }

    #[test]
    fn bucket_counts_partition_the_keys() {
        let keys = [1u32, 3, 5, 7, 9, 11];
        let splitters = [4u32, 8];
        assert_eq!(bucket_counts(&keys, &splitters), vec![2, 2, 2]);
        // All keys below the first splitter.
        assert_eq!(bucket_counts(&[0, 1], &splitters), vec![2, 0, 0]);
        // Boundary keys go right (splitters are inclusive lower bounds).
        assert_eq!(bucket_counts(&[4, 8], &splitters), vec![0, 1, 1]);
        // No splitters: one bucket.
        assert_eq!(bucket_counts(&keys, &[]), vec![6]);
    }
}
