//! The model-derived 3D matrix multiplication (paper Section 4.1).
//!
//! `P = q³` processors arranged as a cube compute `C = A·B` in four
//! supersteps: (1) replicate the `A`/`B` subblocks along the cube axes,
//! (2) multiply locally, (3) redistribute the partial products,
//! (4) sum them. The algorithm is communication-optimal under BSP.
//!
//! Three schedule variants reproduce the paper's comparisons:
//!
//! * [`MatmulVariant::BspNaive`] — word messages, every processor sends to
//!   destination index 0 first (the schedule that stalls the CM-5, Fig. 4);
//! * [`MatmulVariant::BspStaggered`] — word messages, processor `<i,j,k>`
//!   starts its sends at offset `k` (also the mandatory MP-BSP schedule on
//!   the MasPar, Fig. 3);
//! * [`MatmulVariant::Bpram`] — one block transfer per destination
//!   (Figs. 8, 9, 16, 19, 20).
//!
//! On machines whose processor count is not a cube, the largest embedded
//! cube is used (1000 of the MasPar's 1024 PEs).

use pcm_machines::Platform;
use pcm_models::predict::matmul::q_for;
use pcm_sim::topology::Cube;
use pcm_sim::Ctx;

use crate::primitives::embed::Embedding;
use crate::primitives::plan::staggered;
use crate::regions;
use crate::run::{RunResult, RunStats};
use crate::verify::{random_matrix, spot_check_matmul};

/// Which communication schedule to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatmulVariant {
    /// Short messages, identical (contending) send order on all processors.
    BspNaive,
    /// Short messages, staggered send order.
    BspStaggered,
    /// Block transfers (MP-BPRAM), staggered.
    Bpram,
}

/// Per-processor state of the 3D algorithm.
#[derive(Clone, Default)]
struct MmState {
    a_sub: Vec<f64>,
    b_sub: Vec<f64>,
    a_full: Vec<f64>,
    b_full: Vec<f64>,
    c_sub: Vec<f64>,
}

/// Tags distinguishing the replicated operands in superstep 1.
const TAG_A: u32 = 0;
const TAG_B: u32 = 1;
const TAG_C: u32 = 2;

/// Runs `C = A·B` for deterministic pseudo-random `n x n` matrices on the
/// platform and verifies the result against a sequential reference
/// (sampled rows for large `n`).
///
/// # Panics
/// Panics unless `n` is a multiple of `q²` (subblock shapes must be exact).
pub fn run(platform: &Platform, n: usize, variant: MatmulVariant, seed: u64) -> RunResult {
    let p = platform.p();
    let q = q_for(p);
    let p_used = q * q * q;
    assert!(
        n.is_multiple_of(q * q),
        "matrix side {n} must be a multiple of q² = {} on {} (q = {q})",
        q * q,
        platform.name()
    );
    let cube = Cube { q };
    let bn = n / q; // block side
    let sn = n / (q * q); // subblock rows
                          // On the MasPar the cube layout does not align with router clusters
                          // (MPL virtual-processor addressing) — a scrambled embedding makes the
                          // superstep patterns cost what the paper measured. See
                          // `primitives::embed`.
    let embed = if platform.model_params().memory_pipelining {
        Embedding::identity(p)
    } else {
        Embedding::scrambled(p, seed ^ 0xE3BED)
    };
    let embed = &embed;

    let a = random_matrix(n, seed);
    let b = random_matrix(n, seed.wrapping_add(1));

    // Distribute: processor <i,j,k> holds A^k_ij and B^k_ij (sn x bn each).
    let mut states: Vec<MmState> = vec![MmState::default(); p];
    for lid in 0..p_used {
        let (i, j, k) = cube.coords(lid);
        let st = &mut states[embed.to_machine(lid)];
        st.a_sub = extract(&a, n, i * bn + k * sn, j * bn, sn, bn);
        st.b_sub = extract(&b, n, i * bn + k * sn, j * bn, sn, bn);
    }

    let mut machine = platform.machine(states, seed);
    // The block variant issues all q transfers per phase in lockstep
    // (including the self-copy), exactly as the `3·q·(sigma·w·N²/P + ell)`
    // cost expression charges and as a SIMD pp_rsend loop executes. The
    // word variants skip only the A self-copy: every processor skips slot
    // `l == k`, the *first* slot of its staggered order, so the remaining
    // rounds stay aligned. The B and C self-copies travel through the
    // machine even in the word variants — only some processors have one,
    // and skipping it would compress their staggered schedule by a round,
    // colliding with a neighbour's sends (a concurrent-write hazard under
    // MP-BSP).
    let include_self = variant == MatmulVariant::Bpram;

    // Superstep 1: replicate A^k_ij over <i,j,*> and B^k_ij over <*,i,j>.
    machine.superstep(|ctx| {
        let lid = embed.to_logical(ctx.pid());
        if lid >= p_used {
            return;
        }
        let (i, j, k) = cube.coords(lid);
        let a_sub = std::mem::take(&mut ctx.state.a_sub);
        let b_sub = std::mem::take(&mut ctx.state.b_sub);
        let order: Vec<usize> = match variant {
            MatmulVariant::BspNaive => (0..q).collect(),
            _ => staggered(k, q).collect(),
        };
        for &l in &order {
            if include_self || l != k {
                send(
                    ctx,
                    variant,
                    embed.to_machine(cube.id(i, j, l)),
                    TAG_A,
                    &a_sub,
                );
            }
        }
        for &l in &order {
            let dst = embed.to_machine(cube.id(l, i, j));
            send(ctx, variant, dst, TAG_B, &b_sub);
        }
        // The A copy stays in place; the B self-copy (diagonal processors
        // only) was routed through the machine above.
        ctx.state.a_sub = a_sub;
        ctx.state.b_sub = b_sub;
    });

    // Superstep 2: assemble A_ij and B_jk, multiply, redistribute partials.
    machine.superstep(|ctx| {
        let lid = embed.to_logical(ctx.pid());
        if lid >= p_used {
            return;
        }
        let (i, j, k) = cube.coords(lid);
        let mut a_full = vec![0.0f64; bn * bn];
        let mut b_full = vec![0.0f64; bn * bn];
        // Own A subblock (not sent over the network); B arrives entirely
        // through the inbox, self-copies included. The two operand streams
        // are read through their tags: the slot each piece lands in comes
        // from the sender's cube coordinate, so assembly order is
        // irrelevant.
        ctx.touch_write(regions::MATMUL_A);
        ctx.touch_write(regions::MATMUL_B);
        a_full[k * sn * bn..(k + 1) * sn * bn].copy_from_slice(&ctx.state.a_sub);
        for msg in ctx.msgs_tagged(TAG_A) {
            let (_, _, l) = cube.coords(embed.to_logical(msg.src));
            let vals = msg.as_f64s();
            debug_assert_eq!(vals.len(), sn * bn);
            a_full[l * sn * bn..(l + 1) * sn * bn].copy_from_slice(&vals);
        }
        for msg in ctx.msgs_tagged(TAG_B) {
            let (_, _, l) = cube.coords(embed.to_logical(msg.src));
            let vals = msg.as_f64s();
            debug_assert_eq!(vals.len(), sn * bn);
            b_full[l * sn * bn..(l + 1) * sn * bn].copy_from_slice(&vals);
        }
        ctx.charge_copy_words(2 * (bn * bn) as u64);

        // Local multiply: C-hat_ijk = A_ij · B_jk.
        ctx.touch_read(regions::MATMUL_A);
        ctx.touch_read(regions::MATMUL_B);
        let mut c_hat = vec![0.0f64; bn * bn];
        local_multiply(&a_full, &b_full, &mut c_hat, bn);
        ctx.charge_matmul(bn, bn, bn);
        ctx.state.a_full = a_full;
        ctx.state.b_full = b_full;

        // Send C-hat^l to <i,k,l>. The senders sharing a destination set
        // <i,k,*> differ in their j coordinate, so the stagger keys on j.
        let order: Vec<usize> = match variant {
            MatmulVariant::BspNaive => (0..q).collect(),
            _ => staggered(j, q).collect(),
        };
        for &l in &order {
            let dst = embed.to_machine(cube.id(i, k, l));
            send(
                ctx,
                variant,
                dst,
                TAG_C,
                &c_hat[l * sn * bn..(l + 1) * sn * bn],
            );
        }
    });

    // Superstep 3: sum the q partial products of C^k_ij.
    machine.superstep(|ctx| {
        let lid = embed.to_logical(ctx.pid());
        if lid >= p_used {
            return;
        }
        // Start from the locally retained partial (if any).
        ctx.touch_modify(regions::MATMUL_C);
        let mut c_sub = std::mem::take(&mut ctx.state.c_sub);
        if c_sub.is_empty() {
            c_sub = vec![0.0f64; sn * bn];
        }
        for msg in ctx.msgs() {
            debug_assert_eq!(msg.tag, TAG_C);
            for (acc, v) in c_sub.iter_mut().zip(msg.as_f64s()) {
                *acc += v;
            }
        }
        ctx.charge_copy_words((q * sn * bn) as u64);
        ctx.state.c_sub = c_sub;
    });

    let time = machine.time();
    let breakdown = machine.breakdown();

    // Gather C and verify.
    let mut c = vec![0.0f64; n * n];
    for lid in 0..p_used {
        let st = &machine.states()[embed.to_machine(lid)];
        let (i, j, k) = cube.coords(lid);
        scatter_into(&mut c, n, i * bn + k * sn, j * bn, sn, bn, &st.c_sub);
    }
    let rows = if n <= 256 { n } else { 8 };
    let verified = spot_check_matmul(&a, &b, &c, n, rows, seed ^ 0xC0FFEE);

    let mflops = pcm_core::units::mflops(pcm_core::units::matmul_flops(n), time);
    RunResult::new(time, breakdown, verified).with_stats(RunStats {
        mflops,
        ..Default::default()
    })
}

fn send(ctx: &mut Ctx<'_, MmState>, variant: MatmulVariant, dst: usize, tag: u32, vals: &[f64]) {
    match variant {
        MatmulVariant::Bpram => ctx.send_block_f64_tagged(dst, tag, vals),
        _ => ctx.send_words_f64_tagged(dst, tag, vals),
    }
}

/// Extracts a `rows x cols` rectangle starting at `(r0, c0)` from a
/// row-major `n x n` matrix.
fn extract(m: &[f64], n: usize, r0: usize, c0: usize, rows: usize, cols: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let base = (r0 + r) * n + c0;
        out.extend_from_slice(&m[base..base + cols]);
    }
    out
}

/// Writes a rectangle back into a row-major `n x n` matrix.
fn scatter_into(
    m: &mut [f64],
    n: usize,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    v: &[f64],
) {
    for r in 0..rows {
        let base = (r0 + r) * n + c0;
        m[base..base + cols].copy_from_slice(&v[r * cols..(r + 1) * cols]);
    }
}

/// Simple ikj kernel, good enough for the simulation's functional result
/// (the *timing* comes from the platform's kernel model, not from this
/// code's wall-clock).
pub(crate) fn local_multiply(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_the_right_product() {
        let plat = Platform::cm5_with(8); // q = 2, subblocks need n % 4 == 0
        for variant in [
            MatmulVariant::BspNaive,
            MatmulVariant::BspStaggered,
            MatmulVariant::Bpram,
        ] {
            let r = run(&plat, 16, variant, 42);
            assert!(r.verified, "{variant:?} produced a wrong product");
            assert!(r.time.as_micros() > 0.0);
        }
    }

    #[test]
    fn staggering_beats_the_naive_schedule_on_cm5() {
        let plat = Platform::cm5();
        let naive = run(&plat, 64, MatmulVariant::BspNaive, 1);
        let stag = run(&plat, 64, MatmulVariant::BspStaggered, 1);
        assert!(naive.verified && stag.verified);
        assert!(
            naive.breakdown.comm > stag.breakdown.comm,
            "naive comm {} should exceed staggered {}",
            naive.breakdown.comm,
            stag.breakdown.comm
        );
    }

    #[test]
    fn bpram_beats_word_messages_on_gcel() {
        let plat = Platform::gcel();
        let words = run(&plat, 32, MatmulVariant::BspStaggered, 2);
        let blocks = run(&plat, 32, MatmulVariant::Bpram, 2);
        assert!(words.verified && blocks.verified);
        assert!(blocks.time < words.time);
    }

    #[test]
    #[should_panic(expected = "multiple of q²")]
    fn rejects_misaligned_sizes() {
        run(&Platform::cm5(), 100, MatmulVariant::Bpram, 0);
    }

    #[test]
    #[allow(clippy::float_cmp)] // determinism means bit-exact
    fn deterministic_across_runs() {
        let plat = Platform::cm5_with(8);
        let a = run(&plat, 16, MatmulVariant::Bpram, 7);
        let b = run(&plat, 16, MatmulVariant::Bpram, 7);
        assert_eq!(a.time, b.time);
        assert_eq!(a.stats.mflops, b.stats.mflops);
    }

    #[test]
    #[allow(clippy::float_cmp)] // round trip copies values verbatim
    fn extract_scatter_round_trip() {
        let n = 6;
        let m: Vec<f64> = (0..36).map(|x| x as f64).collect();
        let r = extract(&m, n, 2, 3, 2, 3);
        assert_eq!(r, vec![15.0, 16.0, 17.0, 21.0, 22.0, 23.0]);
        let mut back = vec![0.0; 36];
        scatter_into(&mut back, n, 2, 3, 2, 3, &r);
        assert_eq!(back[15], 15.0);
        assert_eq!(back[23], 23.0);
        assert_eq!(back[0], 0.0);
    }
}
