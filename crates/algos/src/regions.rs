//! Shadow-memory region ids for the happens-before analyzer.
//!
//! Algorithms declare their dataflow through private state by calling
//! `ctx.touch_read` / `ctx.touch_write` / `ctx.touch_modify` with these
//! ids (see `pcm_sim::shadow`). Region ids are per-processor and only
//! need to be distinct *within* one run of one algorithm; they are still
//! kept globally distinct here so traces stay unambiguous when a run
//! composes families (sample sort reuses the bitonic merge).

use pcm_sim::RegionId;

// matmul
/// Assembled row-slab of `A` on a processor.
pub const MATMUL_A: RegionId = 0x10;
/// Assembled column-slab of `B`.
pub const MATMUL_B: RegionId = 0x11;
/// Local `C` contributions / assembled result block.
pub const MATMUL_C: RegionId = 0x12;

// bitonic sort
/// The processor's sorted key list.
pub const BITONIC_KEYS: RegionId = 0x20;
/// Incoming-chunk stash accumulated during a merge exchange.
pub const BITONIC_STASH: RegionId = 0x21;

// sample sort
/// The processor's key list.
pub const SAMPLE_KEYS: RegionId = 0x30;
/// Local sample / splitter-candidate list (the bitonic merge's "list").
pub const SAMPLE_SAMPLES: RegionId = 0x31;
/// Stash for the sample-merge exchange.
pub const SAMPLE_STASH: RegionId = 0x32;
/// The agreed splitter vector.
pub const SAMPLE_SPLITTERS: RegionId = 0x33;
/// Per-bucket counts.
pub const SAMPLE_COUNTS: RegionId = 0x34;
/// Receive offsets from the multi-scan.
pub const SAMPLE_OFFSETS: RegionId = 0x35;
/// The destination bucket being assembled.
pub const SAMPLE_BUCKET: RegionId = 0x36;

// parallel radix sort
/// The processor's key list.
pub const RADIX_KEYS: RegionId = 0x40;
/// Per-digit counts of the current pass.
pub const RADIX_COUNTS: RegionId = 0x41;
/// Global digit base offsets.
pub const RADIX_BASE: RegionId = 0x42;
/// Keys regrouped for the current pass.
pub const RADIX_BUCKET: RegionId = 0x43;

// APSP
/// The processor's block of the distance matrix.
pub const APSP_DIST: RegionId = 0x50;
/// Assembly buffer for the pivot column pieces (x direction).
pub const APSP_X: RegionId = 0x51;
/// Assembly buffer for the pivot row pieces (y direction).
pub const APSP_Y: RegionId = 0x52;

// LU
/// The processor's block of the matrix.
pub const LU_BLOCK: RegionId = 0x60;
/// Received pivot-column panel.
pub const LU_LCOL: RegionId = 0x61;
/// Received pivot-row panel.
pub const LU_UROW: RegionId = 0x62;

// vendor kernels
/// Local `A` block (shifted each Cannon step).
pub const VENDOR_A: RegionId = 0x70;
/// Local `B` block.
pub const VENDOR_B: RegionId = 0x71;
/// Local `C` accumulator.
pub const VENDOR_C: RegionId = 0x72;

// standalone collectives
/// The processor's input vector.
pub const COLL_DATA: RegionId = 0x80;
/// The collective's result buffer.
pub const COLL_OUT: RegionId = 0x81;
