//! Superstep vector clocks.
//!
//! BSP gives the analyzer an unusually friendly clock structure: within a
//! superstep all processors are concurrent, and every barrier is a global
//! synchronization that joins *all* clocks at once. An event is therefore
//! fully located by an [`Epoch`] `(pid, step)`, and the happens-before
//! relation collapses to superstep arithmetic:
//!
//! * `(q, s) → (r, t)` for `q != r` iff `t > s` (a barrier lies between),
//! * `(q, s) → (q, t)` iff `t >= s` (program order within a processor).
//!
//! The full [`VClock`] is still carried per processor — it records, for
//! each peer, the latest epoch of that peer whose effects are visible —
//! because it is what generalizes if the simulator ever grows subset
//! barriers, and because the checker uses it to decide whether a send's
//! effects could already be visible to its destination.

/// A point in the run: processor `pid` during superstep `step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// The processor the event ran on.
    pub pid: usize,
    /// The superstep it ran in.
    pub step: usize,
}

impl Epoch {
    /// Whether this epoch happens-before `other` (or equals it in program
    /// order): effects of `self` are visible at `other`.
    pub fn happens_before(self, other: Epoch) -> bool {
        if self.pid == other.pid {
            other.step >= self.step
        } else {
            other.step > self.step
        }
    }
}

/// Per-processor vector clock: `clock[q]` is the number of supersteps of
/// processor `q` whose effects are visible here (i.e. epochs
/// `(q, s)` with `s < clock[q]` have been joined through barriers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VClock {
    clock: Vec<usize>,
}

impl VClock {
    /// A clock that has seen nothing, for a `p`-processor machine.
    pub fn new(p: usize) -> Self {
        VClock { clock: vec![0; p] }
    }

    /// Number of processors the clock tracks.
    pub fn len(&self) -> usize {
        self.clock.len()
    }

    /// True for a zero-processor clock (never the case in a real machine).
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
    }

    /// The component for processor `q`.
    pub fn get(&self, q: usize) -> usize {
        self.clock[q]
    }

    /// Advances own component: processor `pid` has completed superstep
    /// `step` (components are "next unseen step", so this stores `step+1`).
    pub fn tick(&mut self, pid: usize, step: usize) {
        self.clock[pid] = self.clock[pid].max(step + 1);
    }

    /// Joins another clock in (the barrier operation): componentwise max.
    pub fn join(&mut self, other: &VClock) {
        debug_assert_eq!(self.clock.len(), other.clock.len());
        for (c, o) in self.clock.iter_mut().zip(&other.clock) {
            *c = (*c).max(*o);
        }
    }

    /// Whether the effects of epoch `e` are visible to the owner of this
    /// clock.
    pub fn sees(&self, e: Epoch) -> bool {
        self.clock[e.pid] > e.step
    }
}

/// Joins all processors' clocks at a global barrier ending superstep
/// `step`: every clock first ticks its own component, then all clocks
/// become the componentwise max — after a BSP barrier everyone has seen
/// everyone's past.
pub fn global_barrier(clocks: &mut [VClock], step: usize) {
    let p = clocks.len();
    for (pid, c) in clocks.iter_mut().enumerate() {
        c.tick(pid, step);
    }
    let mut joined = VClock::new(p);
    for c in clocks.iter() {
        joined.join(c);
    }
    for c in clocks.iter_mut() {
        *c = joined.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_processor_visibility_needs_a_barrier() {
        let send = Epoch { pid: 1, step: 3 };
        assert!(!send.happens_before(Epoch { pid: 2, step: 3 }), "same step");
        assert!(send.happens_before(Epoch { pid: 2, step: 4 }), "next step");
        assert!(!send.happens_before(Epoch { pid: 2, step: 2 }), "earlier");
    }

    #[test]
    fn program_order_is_reflexive() {
        let e = Epoch { pid: 0, step: 5 };
        assert!(e.happens_before(e));
        assert!(e.happens_before(Epoch { pid: 0, step: 6 }));
        assert!(!e.happens_before(Epoch { pid: 0, step: 4 }));
    }

    #[test]
    fn barrier_joins_everyones_past() {
        let mut clocks: Vec<VClock> = (0..3).map(|_| VClock::new(3)).collect();
        // During step 0, no one sees anyone's step-0 events.
        assert!(!clocks[0].sees(Epoch { pid: 1, step: 0 }));
        global_barrier(&mut clocks, 0);
        // After the barrier, everyone sees every step-0 event.
        for c in &clocks {
            for pid in 0..3 {
                assert!(c.sees(Epoch { pid, step: 0 }));
                assert!(!c.sees(Epoch { pid, step: 1 }));
            }
        }
        global_barrier(&mut clocks, 1);
        assert!(clocks[2].sees(Epoch { pid: 0, step: 1 }));
    }

    #[test]
    fn empty_trace_sees_nothing() {
        // A machine that never ran a superstep: fresh clocks see no epoch,
        // and a barrier over zero processors is a no-op.
        let c = VClock::new(4);
        for pid in 0..4 {
            assert!(!c.sees(Epoch { pid, step: 0 }));
        }
        let mut none: Vec<VClock> = Vec::new();
        global_barrier(&mut none, 0);
        assert!(none.is_empty());
        assert!(VClock::new(0).is_empty());
        assert!(!VClock::new(1).is_empty());
    }

    #[test]
    fn single_processor_trace_is_totally_ordered() {
        // With P = 1 every pair of epochs is ordered by program order and
        // a barrier only joins the clock with itself.
        let mut clocks = vec![VClock::new(1)];
        for step in 0..3 {
            let before = Epoch { pid: 0, step };
            assert!(before.happens_before(Epoch {
                pid: 0,
                step: step + 1
            }));
            global_barrier(&mut clocks, step);
            assert!(clocks[0].sees(before));
        }
        assert_eq!(clocks[0].get(0), 3);
        assert!(!clocks[0].sees(Epoch { pid: 0, step: 3 }));
    }

    #[test]
    fn concurrent_but_ordered_pairs_stay_concurrent() {
        // Two events in the same superstep on different processors are
        // delivered in a deterministic (src) order by the simulator, but
        // neither happens-before the other — delivery order is not
        // causality. Both become visible to everyone after one barrier.
        let a = Epoch { pid: 0, step: 2 };
        let b = Epoch { pid: 3, step: 2 };
        assert!(!a.happens_before(b));
        assert!(!b.happens_before(a));
        let later = Epoch { pid: 1, step: 3 };
        assert!(a.happens_before(later) && b.happens_before(later));

        let p = 4;
        let mut clocks: Vec<VClock> = (0..p).map(|_| VClock::new(p)).collect();
        for step in 0..=2 {
            // Mid-superstep, neither event is visible to the other's proc.
            assert!(!clocks[a.pid].sees(b) && !clocks[b.pid].sees(a));
            global_barrier(&mut clocks, step);
        }
        for c in &clocks {
            assert!(c.sees(a) && c.sees(b));
        }
    }

    #[test]
    fn vclock_agrees_with_epoch_arithmetic() {
        // The collapsed happens-before (superstep arithmetic) must match
        // what the explicit clocks compute under global barriers.
        let p = 4;
        let mut clocks: Vec<VClock> = (0..p).map(|_| VClock::new(p)).collect();
        for step in 0..3 {
            global_barrier(&mut clocks, step);
        }
        // Clocks now sit at the start of step 3.
        let here = 3usize;
        for q in 0..p {
            for s in 0..5 {
                let e = Epoch { pid: q, step: s };
                let visible = clocks[0].sees(e);
                let arithmetic = s < here;
                assert_eq!(visible, arithmetic, "epoch ({q},{s}) at step {here}");
            }
        }
    }
}
