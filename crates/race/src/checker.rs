//! The happens-before checker: a [`Validator`] that replays each
//! superstep's shadow events against the declared [`RaceConfig`].
//!
//! The checker maintains three pieces of state across supersteps:
//!
//! * **pending deliveries** — every deliverable send of superstep `s`
//!   becomes a pending delivery that the destination can consume during
//!   superstep `s+1` (the BSP contract). A pending delivery that no
//!   filter-compatible `msgs*` accessor ever observes before the next
//!   barrier clears the inbox is *dead*;
//! * **region shadow states** — the `touch_read`/`touch_write`/
//!   `touch_modify` stream per `(pid, region)`, checked for
//!   overwrite-before-read;
//! * **vector clocks** — one [`VClock`] per processor, joined at every
//!   barrier. A read attempt is *stale* when its filter would accept a
//!   send whose epoch the reader's clock does not yet see.
//!
//! Rule summary (stable ids in `pcm-check`):
//!
//! | rule | fires when |
//! |------|------------|
//! | W01  | under `exclusive_writes`, two *distinct* sources send into one `(dst, tag)` cell in one superstep |
//! | W02  | a dead delivery whose destination made a filter-compatible, zero-match read at the producing superstep (it acted on stale data), and any delivery still unconsumed when the machine drops after such a read |
//! | W03  | under `tagged_inbox`, an untagged `msgs()` read observed two or more distinct tags |
//! | W04  | a dead delivery with no stale-read attempt (wasted communication), or a region overwritten before anything read it |

use std::collections::HashMap;

use pcm_check::{RuleId, Violation};
use pcm_sim::shadow::{ConsumeFilter, RegionId, ShadowEvent};
use pcm_sim::validate::{RunReport, StepReport, Validator};

use crate::vclock::{global_barrier, Epoch, VClock};
use crate::{RaceConfig, Sink};

/// One deliverable message in flight between the barrier that ends its
/// producing superstep and the barrier that clears it from the inbox.
struct Pending {
    src: usize,
    tag: u32,
    /// Superstep the send happened in.
    step: usize,
    /// The destination made a filter-compatible zero-match read during
    /// the producing superstep — before the barrier made the data
    /// visible. If the delivery additionally goes dead, that early read
    /// was the only read: the algorithm acted on stale data (W02).
    early: bool,
    consumed: bool,
}

/// Shadow state of one `(pid, region)` cell. The first access initializes
/// the region (initial state distributed at machine construction counts
/// as written), so a leading read is always legal.
enum RegionState {
    /// Last event was a write (or modify); nothing has read it since.
    WrittenUnread,
    /// The latest value has been read.
    Read,
}

/// The per-machine validator. Construct through
/// [`crate::check_races`], which installs it on every machine a closure
/// creates.
pub struct RaceChecker {
    config: RaceConfig,
    p: usize,
    pending: Vec<Vec<Pending>>,
    regions: HashMap<(usize, RegionId), RegionState>,
    clocks: Vec<VClock>,
    sink: Sink,
}

impl RaceChecker {
    /// A checker for a `p`-processor machine, pushing findings into
    /// `sink`.
    pub fn new(config: RaceConfig, p: usize, sink: Sink) -> Self {
        RaceChecker {
            config,
            p,
            pending: (0..p).map(|_| Vec::new()).collect(),
            regions: HashMap::new(),
            clocks: (0..p).map(|_| VClock::new(p)).collect(),
            sink,
        }
    }

    fn push(&self, rule: RuleId, step: usize, pid: Option<usize>, detail: String) {
        self.sink.borrow_mut().push(Violation {
            rule,
            step,
            pid,
            detail,
        });
    }

    /// Reports a delivery that was cleared from (or dropped with) the
    /// inbox without any compatible read.
    fn report_dead(&self, d: &Pending, dst: usize, step: usize) {
        if d.early {
            self.push(
                RuleId::StaleRead,
                step,
                Some(dst),
                format!(
                    "read of tag {} data attempted during producing superstep {} \
                     (before the barrier) and the delivery from pid {} was then \
                     dropped unread — the algorithm acted on stale data",
                    d.tag, d.step, d.src
                ),
            );
        } else {
            self.push(
                RuleId::DeadSend,
                step,
                Some(dst),
                format!(
                    "delivery from pid {} (tag {}, sent superstep {}) was never \
                     read before the inbox cleared",
                    d.src, d.tag, d.step
                ),
            );
        }
    }

    /// Applies one region touch to the shadow state machine.
    fn touch(&mut self, pid: usize, step: usize, event: ShadowEvent) {
        match event {
            ShadowEvent::Read { region } => {
                self.regions.insert((pid, region), RegionState::Read);
            }
            ShadowEvent::Modify { region } => {
                // Read-modify-write: consumes the previous value, leaves a
                // fresh unread one. Never a violation on its own.
                self.regions
                    .insert((pid, region), RegionState::WrittenUnread);
            }
            ShadowEvent::Write { region } => {
                let prev = self
                    .regions
                    .insert((pid, region), RegionState::WrittenUnread);
                if let Some(RegionState::WrittenUnread) = prev {
                    self.push(
                        RuleId::DeadSend,
                        step,
                        Some(pid),
                        format!("region {region} overwritten before anything read it"),
                    );
                }
            }
            ShadowEvent::Consume { .. } => {}
        }
    }
}

impl Validator for RaceChecker {
    fn check_step(&mut self, r: &StepReport<'_>) {
        let s = r.step;

        // 1. Match this step's consumes against the deliveries that the
        //    barrier before this step made visible. A single compatible
        //    accessor call exposes every matching message.
        for pid in 0..self.p {
            debug_assert_eq!(
                self.pending[pid].len(),
                r.inbox_count[pid],
                "pending model out of sync with the machine's inboxes"
            );
            for e in &r.events[pid] {
                if let ShadowEvent::Consume { filter, .. } = e {
                    for d in &mut self.pending[pid] {
                        if filter.accepts(d.tag, &[d.src]) {
                            debug_assert!(
                                self.clocks[pid].sees(Epoch {
                                    pid: d.src,
                                    step: d.step
                                }),
                                "a delivered message's send epoch must be visible"
                            );
                            d.consumed = true;
                        }
                    }
                }
            }
        }

        // 2. Whatever was delivered but not consumed dies at the barrier
        //    that ends this superstep.
        for pid in 0..self.p {
            for d in &self.pending[pid] {
                if !d.consumed {
                    self.report_dead(d, pid, s);
                }
            }
            self.pending[pid].clear();
        }

        // 3. W01: concurrent writes into one (dst, tag) cell. Two sends
        //    from the *same* source are ordered by send order and thus
        //    deterministic; only distinct sources race.
        if self.config.exclusive_writes {
            let mut writers: HashMap<(usize, u32), Vec<usize>> = HashMap::new();
            for (src, sends) in r.sends.iter().enumerate() {
                for m in sends {
                    let srcs = writers.entry((m.dst, m.tag)).or_default();
                    if !srcs.contains(&src) {
                        srcs.push(src);
                    }
                }
            }
            let mut cells: Vec<(&(usize, u32), &Vec<usize>)> =
                writers.iter().filter(|(_, srcs)| srcs.len() >= 2).collect();
            cells.sort_by_key(|(cell, _)| **cell);
            for ((dst, tag), srcs) in cells {
                self.push(
                    RuleId::WwRace,
                    s,
                    Some(*dst),
                    format!(
                        "{} processors (pids {srcs:?}) wrote into the (dst {dst}, \
                         tag {tag}) cell in one superstep under exclusive writes",
                        srcs.len()
                    ),
                );
            }
        }

        // 4. W03: an untagged read observing several logical streams.
        if self.config.tagged_inbox {
            for pid in 0..self.p {
                for e in &r.events[pid] {
                    if let ShadowEvent::Consume {
                        filter: ConsumeFilter::Any,
                        distinct_tags,
                        ..
                    } = e
                    {
                        if *distinct_tags >= 2 {
                            self.push(
                                RuleId::InboxAlias,
                                s,
                                Some(pid),
                                format!(
                                    "untagged msgs() read aliased {distinct_tags} \
                                     distinct tags under a tagged-inbox config"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // 5. Region shadow state, in program order per processor.
        for pid in 0..self.p {
            for e in &r.events[pid] {
                self.touch(pid, s, *e);
            }
        }

        // 6. This step's sends become the next step's pending deliveries.
        //    A send is flagged `early` if its destination already tried a
        //    compatible read this very superstep and came up empty while
        //    the send's epoch was not yet visible to it.
        for (src, sends) in r.sends.iter().enumerate() {
            for m in sends {
                let epoch = Epoch { pid: src, step: s };
                let early = !self.clocks[m.dst].sees(epoch)
                    && r.events[m.dst].iter().any(|e| {
                        matches!(
                            e,
                            ShadowEvent::Consume { filter, matched: 0, .. }
                                if filter.accepts(m.tag, &[src])
                        )
                    });
                self.pending[m.dst].push(Pending {
                    src,
                    tag: m.tag,
                    step: s,
                    early,
                    consumed: false,
                });
            }
        }

        // 7. The barrier ending this superstep joins all clocks.
        global_barrier(&mut self.clocks, s);
    }

    fn finish(&mut self, r: &RunReport<'_>) {
        // Deliveries still pending when the machine drops were never
        // readable: classify exactly like a cleared inbox.
        for pid in 0..self.p {
            debug_assert_eq!(self.pending[pid].len(), r.pending_inbox[pid]);
            for d in &self.pending[pid] {
                self.report_dead(d, pid, r.supersteps);
            }
            self.pending[pid].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use pcm_sim::{IdealNetwork, Machine, UniformCompute};

    use crate::{check_races, errors, warnings, RaceConfig};
    use pcm_check::RuleId;

    fn machine(p: usize) -> Machine<u32> {
        Machine::new(
            Box::new(IdealNetwork),
            Arc::new(UniformCompute::test_model()),
            vec![0u32; p],
            11,
        )
    }

    fn rules(v: &[pcm_check::Violation]) -> Vec<RuleId> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn w01_fires_on_two_sources_into_one_cell() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() <= 1 {
                    ctx.send_word_u32(3, 9);
                }
            });
            m.superstep(|ctx| {
                let _ = ctx.msgs();
            });
        });
        assert_eq!(rules(&v), vec![RuleId::WwRace], "{v:?}");
    }

    #[test]
    fn w01_tolerates_one_source_sending_twice() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(3, 1);
                    ctx.send_word_u32(3, 2); // ordered after the first
                }
            });
            m.superstep(|ctx| {
                let _ = ctx.msgs();
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn w01_is_off_under_queued_configs() {
        let ((), v) = check_races(RaceConfig::queued(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() <= 2 {
                    ctx.send_word_u32(3, 9);
                }
            });
            m.superstep(|ctx| {
                let _ = ctx.msgs();
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn w02_fires_when_a_barrierless_read_precedes_a_dropped_delivery() {
        // The broken fixture: the consumer "forgot" the barrier — it reads
        // in the same superstep the producer sends, then the run ends.
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 42);
                } else {
                    assert!(ctx.msgs().is_empty(), "data not delivered yet");
                }
            });
        });
        assert_eq!(rules(&v), vec![RuleId::StaleRead], "{v:?}");
    }

    #[test]
    fn w02_clean_when_the_read_waits_for_the_barrier() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 42);
                }
            });
            m.superstep(|ctx| {
                if ctx.pid() == 1 {
                    assert_eq!(ctx.msgs().len(), 1);
                }
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn early_read_followed_by_a_real_read_is_benign() {
        // Absorb-then-send (bitonic's steady state): reading an empty
        // inbox before sending is fine as long as the data is read after
        // the barrier.
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                let _ = ctx.msgs(); // empty: nothing sent yet
                let peer = 1 - ctx.pid();
                ctx.send_word_u32(peer, 1);
            });
            m.superstep(|ctx| {
                assert_eq!(ctx.msgs().len(), 1);
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn w03_fires_on_untagged_read_of_mixed_tags() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_words_u32_tagged(1, 7, &[1]);
                    ctx.send_words_u32_tagged(1, 8, &[2]);
                }
            });
            m.superstep(|ctx| {
                let _ = ctx.msgs(); // aliases tags 7 and 8
            });
        });
        assert_eq!(rules(&v), vec![RuleId::InboxAlias], "{v:?}");
    }

    #[test]
    fn w03_clean_with_tagged_reads_or_dispatch_config() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_words_u32_tagged(1, 7, &[1]);
                    ctx.send_words_u32_tagged(1, 8, &[2]);
                }
            });
            m.superstep(|ctx| {
                let a = ctx.msgs_tagged(7).count();
                let b = ctx.msgs_tagged(8).count();
                assert_eq!(a + b, if ctx.pid() == 1 { 2 } else { 0 });
            });
        });
        assert!(v.is_empty(), "{v:?}");
        // The same mixed-tag msgs() read is fine when the config expects
        // dynamic-tag dispatch.
        let ((), v) = check_races(RaceConfig::exclusive_dispatch(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_words_u32_tagged(1, 7, &[1]);
                    ctx.send_words_u32_tagged(1, 8, &[2]);
                }
            });
            m.superstep(|ctx| {
                let _ = ctx.msgs();
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn w04_fires_on_a_delivery_no_compatible_read_observes() {
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_words_u32_tagged(1, 5, &[1]);
                }
            });
            m.superstep(|ctx| {
                // Reads the wrong stream: tag 6 never matches the tag-5
                // delivery, which dies at the next barrier.
                let _ = ctx.msgs_tagged(6).count();
            });
        });
        assert_eq!(rules(&v), vec![RuleId::DeadSend], "{v:?}");
        assert!(errors(&v).is_empty(), "W04 is a warning");
        assert_eq!(warnings(&v).len(), 1);
    }

    #[test]
    fn w04_fires_on_region_overwritten_before_read() {
        const BUF: u32 = 3;
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| ctx.touch_write(BUF));
            m.superstep(|ctx| ctx.touch_write(BUF)); // clobbers unread data
        });
        assert_eq!(rules(&v), vec![RuleId::DeadSend, RuleId::DeadSend]);
        assert!(v[0].detail.contains("region 3"), "{v:?}");
    }

    #[test]
    fn region_modify_and_read_write_cycles_are_clean() {
        const BUF: u32 = 3;
        let ((), v) = check_races(RaceConfig::exclusive(), || {
            let mut m = machine(2);
            m.superstep(|ctx| ctx.touch_read(BUF)); // initial state: legal
            m.superstep(|ctx| ctx.touch_modify(BUF));
            m.superstep(|ctx| ctx.touch_modify(BUF)); // append consumes previous
            m.superstep(|ctx| {
                ctx.touch_read(BUF);
                ctx.touch_write(BUF); // write after read: fine
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn checker_is_inert_without_violations_across_many_steps() {
        let ((), v) = check_races(RaceConfig::queued_tagged(), || {
            let mut m = machine(8);
            for _ in 0..5 {
                m.superstep(|ctx| {
                    let sum: u32 = ctx.msgs().iter().map(|m| m.word_u32()).sum();
                    let dst = (ctx.pid() + 1) % ctx.nprocs();
                    ctx.send_word_u32(dst, sum + 1);
                });
            }
            m.superstep(|ctx| {
                let _ = ctx.msgs();
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }
}
