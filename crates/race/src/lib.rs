//! # pcm-race — happens-before race & staleness analyzer
//!
//! `pcm-check` lints message *discipline* per superstep; this crate adds
//! the missing *dataflow across supersteps*. It consumes the simulator's
//! validator hook ([`pcm_sim::validate`]) plus the shadow-memory event
//! stream ([`pcm_sim::shadow`]) that instrumented algorithms emit, and
//! checks a vector-clocked happens-before relation over every send,
//! inbox read and private-region touch:
//!
//! * **W01 write-write race** — two distinct processors wrote into the
//!   same `(destination, tag)` cell within one superstep while the
//!   algorithm declared exclusive writes. The delivered order (and thus
//!   the read-back value stream) depends on processor interleaving the
//!   simulator happens to serialize deterministically — real hardware
//!   would not.
//! * **W02 stale read** — a processor consumed data whose producing send
//!   had not crossed a barrier. Detected as a filter-compatible,
//!   zero-match read attempt in the producing superstep paired with the
//!   delivery subsequently dying unread: the early read was the only
//!   read, so the algorithm acted on stale (absent) data. This is the
//!   bug class a wall-clock simulator silently hides.
//! * **W03 inbox aliasing** — an untagged `msgs()` read observed two or
//!   more distinct tags under a config that declares a tagged inbox: two
//!   logical streams aliased into one read.
//! * **W04 dead send** (warning) — data delivered but never read before
//!   the next barrier cleared the inbox, or a private region overwritten
//!   before anything read it: wasted communication, the "cheap pattern"
//!   smell the paper attributes mispredictions to.
//!
//! The [`RaceConfig`] declares which guarantees an algorithm claims, in
//! the spirit of `pcm_check::Discipline`: concurrent-write algorithms
//! (fan-in accumulations) run with `exclusive_writes` off, dynamic-tag
//! dispatchers with `tagged_inbox` off.
//!
//! ```
//! use pcm_race::{check_races, errors, RaceConfig};
//! use pcm_sim::{IdealNetwork, Machine, UniformCompute};
//! use std::sync::Arc;
//!
//! let ((), findings) = check_races(RaceConfig::exclusive(), || {
//!     let mut m = Machine::new(
//!         Box::new(IdealNetwork),
//!         Arc::new(UniformCompute::test_model()),
//!         vec![0u32; 4],
//!         1,
//!     );
//!     m.superstep(|ctx| {
//!         let dst = (ctx.pid() + 1) % ctx.nprocs();
//!         ctx.send_word_u32(dst, 7);
//!     });
//!     m.superstep(|ctx| {
//!         let _ = ctx.msgs();
//!     });
//! });
//! assert!(errors(&findings).is_empty());
//! ```

#![warn(clippy::pedantic)]
#![allow(
    // The checker's prose-heavy reports read better unmangled.
    clippy::doc_markdown,
    // Stylistic pedantic lints the surrounding workspace does not follow.
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::redundant_closure_for_method_calls,
    // check_step is one cohesive 7-phase replay; splitting it would
    // scatter the per-superstep protocol across helpers.
    clippy::too_many_lines
)]

use std::cell::RefCell;
use std::rc::Rc;

use pcm_check::{Severity, Violation};
use pcm_sim::validate::with_validator;

pub mod checker;
pub mod vclock;

pub use checker::RaceChecker;
pub use vclock::{Epoch, VClock};

/// Shared violation sink the per-machine checkers push into.
pub(crate) type Sink = Rc<RefCell<Vec<Violation>>>;

/// What happens-before guarantees an algorithm declares, mirroring
/// `pcm_check::Discipline` for the protocol layer.
#[derive(Clone, Copy, Debug)]
pub struct RaceConfig {
    /// Name for diagnostics.
    pub name: &'static str,
    /// Every `(destination, tag)` cell has at most one writing processor
    /// per superstep. Off for declared fan-in patterns (count
    /// accumulation, broadcast gathers), where the receiver folds the
    /// queue order-insensitively.
    pub exclusive_writes: bool,
    /// Logical streams are separated by tag and read through
    /// `msgs_tagged` (or carry a single tag). Off for dynamic-tag
    /// dispatchers that decode the tag from each message.
    pub tagged_inbox: bool,
}

impl RaceConfig {
    /// Exclusive writes, tagged inbox — the strictest config: single
    /// writer per cell, streams never alias.
    pub fn exclusive() -> Self {
        RaceConfig {
            name: "exclusive",
            exclusive_writes: true,
            tagged_inbox: true,
        }
    }

    /// Exclusive writes, but the receiver dispatches on tags it decodes
    /// from the messages (dynamic tag spaces like APSP's `2·idx+axis`),
    /// so untagged reads of mixed tags are expected.
    pub fn exclusive_dispatch() -> Self {
        RaceConfig {
            name: "exclusive-dispatch",
            exclusive_writes: true,
            tagged_inbox: false,
        }
    }

    /// Declared fan-in (several sources per cell, folded
    /// order-insensitively), streams still tag-separated.
    pub fn queued_tagged() -> Self {
        RaceConfig {
            name: "queued-tagged",
            exclusive_writes: false,
            tagged_inbox: true,
        }
    }

    /// Declared fan-in with dynamic dispatch — the loosest config; only
    /// W02 and W04 remain active.
    pub fn queued() -> Self {
        RaceConfig {
            name: "queued",
            exclusive_writes: false,
            tagged_inbox: false,
        }
    }
}

/// Runs `body` with a [`RaceChecker`] installed on every machine it
/// creates (via the thread-local validator hook) and returns `body`'s
/// result alongside every finding, in detection order.
pub fn check_races<R>(config: RaceConfig, body: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    let sink: Sink = Rc::default();
    let hook_sink = sink.clone();
    let result = with_validator(
        move |p| Box::new(RaceChecker::new(config, p, hook_sink.clone())),
        body,
    );
    let violations = sink.take();
    (result, violations)
}

/// The error-severity findings (W01–W03): findings that invalidate the
/// run.
pub fn errors(violations: &[Violation]) -> Vec<&Violation> {
    violations
        .iter()
        .filter(|v| v.rule.severity() == Severity::Error)
        .collect()
}

/// The warning-severity findings (W04): smells that do not invalidate
/// the run.
pub fn warnings(violations: &[Violation]) -> Vec<&Violation> {
    violations
        .iter()
        .filter(|v| v.rule.severity() == Severity::Warning)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_declare_the_documented_flags() {
        assert!(RaceConfig::exclusive().exclusive_writes);
        assert!(RaceConfig::exclusive().tagged_inbox);
        assert!(RaceConfig::exclusive_dispatch().exclusive_writes);
        assert!(!RaceConfig::exclusive_dispatch().tagged_inbox);
        assert!(!RaceConfig::queued_tagged().exclusive_writes);
        assert!(RaceConfig::queued_tagged().tagged_inbox);
        assert!(!RaceConfig::queued().exclusive_writes);
        assert!(!RaceConfig::queued().tagged_inbox);
    }
}
