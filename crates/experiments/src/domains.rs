//! The parameter grids the figure drivers sweep, in machine-checkable form.
//!
//! Every figure iterates some `(machine, family, n)` grid that must satisfy
//! the domain preconditions of the closed forms it plots (divisibility by
//! the block side, power-of-two processor counts, ...). [`grids`] restates
//! those sweeps as data so the `pcm-sym` verifier's S02 rule can check each
//! grid point against the [`pcm_models::DomainSpec`] the predictors declare,
//! instead of the preconditions living only in comments.

use pcm_machines::Platform;

use crate::report::Scale;
use crate::{apsp_figs, matmul_figs, sort_figs};

/// One figure's sweep: which algorithm family runs on which machine at
/// which problem sizes.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Figure label ("Fig. 3", ...).
    pub figure: &'static str,
    /// Algorithm family name matching [`pcm_models::ClosedForm::family`]
    /// ("matmul", "bitonic", "samplesort", "apsp").
    pub family: &'static str,
    /// Machine name ("MasPar", "GCel", "CM-5").
    pub machine: &'static str,
    /// Processor count the figure runs with.
    pub p: usize,
    /// Problem sizes swept at full (paper) scale: matrix side N for
    /// matmul/APSP, keys per processor M for the sorts.
    pub ns: Vec<usize>,
}

fn spec(figure: &'static str, family: &'static str, plat: &Platform, ns: Vec<usize>) -> GridSpec {
    GridSpec {
        figure,
        family,
        machine: plat.name(),
        p: plat.p(),
        ns,
    }
}

/// Every full-scale figure sweep that exercises a family with a closed-form
/// predictor, one entry per figure.
pub fn grids() -> Vec<GridSpec> {
    let maspar = Platform::maspar();
    let gcel = Platform::gcel();
    let cm5 = Platform::cm5();
    let s = Scale::Full;
    vec![
        spec("Fig. 3", "matmul", &maspar, matmul_figs::maspar_ns(s)),
        spec("Fig. 4", "matmul", &cm5, matmul_figs::cm5_ns(s)),
        spec("Fig. 8", "matmul", &maspar, matmul_figs::maspar_ns(s)),
        spec("Fig. 9", "matmul", &cm5, matmul_figs::cm5_ns(s)),
        spec("Fig. 16", "matmul", &cm5, matmul_figs::cm5_ns(s)),
        spec("Fig. 19", "matmul", &maspar, matmul_figs::maspar_ns(s)),
        spec("Fig. 20", "matmul", &cm5, matmul_figs::cm5_ns(s)),
        spec("Fig. 5", "bitonic", &maspar, sort_figs::maspar_ms(s)),
        spec("Fig. 6", "bitonic", &gcel, sort_figs::gcel_ms(s)),
        spec("Fig. 10", "bitonic", &maspar, sort_figs::maspar_ms(s)),
        spec("Fig. 11", "bitonic", &gcel, sort_figs::gcel_ms(s)),
        spec("Fig. 17", "bitonic", &maspar, sort_figs::maspar_ms(s)),
        spec("Fig. 18", "bitonic", &gcel, sort_figs::fig18_ms(s)),
        spec("Fig. 18", "samplesort", &gcel, sort_figs::fig18_ms(s)),
        spec("Fig. 12", "apsp", &maspar, apsp_figs::full_ns()),
        spec("Fig. 13", "apsp", &gcel, apsp_figs::full_ns()),
        spec("Fig. 15", "apsp", &cm5, apsp_figs::full_ns()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_models::Predictor as _;

    #[test]
    fn every_grid_point_is_in_the_declared_domain() {
        let predictors = pcm_models::symbolic::all();
        for grid in grids() {
            let domain = predictors
                .iter()
                .find(|c| c.family() == grid.family)
                .unwrap_or_else(|| panic!("no predictor family {}", grid.family))
                .domain();
            for &n in &grid.ns {
                assert!(
                    domain.check(n, grid.p).is_ok(),
                    "{} ({} on {}): n = {n}, p = {} violates the domain: {}",
                    grid.figure,
                    grid.family,
                    grid.machine,
                    grid.p,
                    domain.check(n, grid.p).unwrap_err()
                );
            }
        }
    }

    #[test]
    fn grids_cover_all_machines_and_families() {
        let gs = grids();
        for machine in ["MasPar", "GCel", "CM-5"] {
            assert!(gs.iter().any(|g| g.machine == machine));
        }
        for family in ["matmul", "bitonic", "samplesort", "apsp"] {
            assert!(gs.iter().any(|g| g.family == family));
        }
    }
}
