//! Matrix-multiplication figures: 3, 4, 8, 9 (evaluation), 16
//! (model comparison), 19 and 20 (vendor-library comparison).

use pcm_algos::matmul::{self, MatmulVariant};
use pcm_algos::vendor;
use pcm_core::{Figure, Series};
use pcm_machines::Platform;
use pcm_models::predict;
use pcm_sim::ComputeModel as _;

use crate::report::{Output, Scale};

/// Matrix sides swept by the MasPar matmul figures (3, 8, 19).
/// q = 10 on the MasPar: N must be a multiple of 100.
pub fn maspar_ns(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![100, 200, 300, 400, 500, 600, 700],
        Scale::Quick => vec![100, 300],
    }
}

/// Matrix sides swept by the CM-5 matmul figures (4, 9, 16, 20).
/// q = 4 on the CM-5: N must be a multiple of 16.
pub fn cm5_ns(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![64, 128, 256, 512, 1024],
        Scale::Quick => vec![64, 128, 256],
    }
}

/// Fig. 3: measured vs predicted MP-BSP matmul on the MasPar.
pub fn fig03(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ns = maspar_ns(scale);
    let mut measured = Series::new("Measured");
    let mut predicted = Series::new("Predicted (MP-BSP)");
    for &n in &ns {
        let r = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        assert!(r.verified, "matmul result check failed at N = {n}");
        measured.push(pcm_core::DataPoint::new(n as f64, r.time.as_secs()));
        predicted.push(pcm_core::DataPoint::new(
            n as f64,
            predict::matmul::mp_bsp(&plat.model_params(), n).as_secs(),
        ));
    }
    Output::Fig(
        Figure::new(
            "Fig. 3",
            "Measured and predicted MP-BSP matrix multiplication on the MasPar",
            "N",
            "s",
        )
        .with(measured)
        .with(predicted),
    )
}

/// Fig. 4: naive vs staggered vs predicted BSP matmul on the CM-5 — the
/// receiver-contention error.
pub fn fig04(scale: Scale, seed: u64) -> Output {
    let plat = Platform::cm5();
    let ns = cm5_ns(scale);
    let mut naive = Series::new("Measured (naive)");
    let mut staggered = Series::new("Staggered");
    let mut predicted = Series::new("Predicted (BSP)");
    for &n in &ns {
        let rn = matmul::run(&plat, n, MatmulVariant::BspNaive, seed);
        let rs = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        assert!(rn.verified && rs.verified);
        naive.push(pcm_core::DataPoint::new(n as f64, rn.time.as_millis()));
        staggered.push(pcm_core::DataPoint::new(n as f64, rs.time.as_millis()));
        predicted.push(pcm_core::DataPoint::new(
            n as f64,
            predict::matmul::bsp(&plat.model_params(), n).as_millis(),
        ));
    }
    Output::Fig(
        Figure::new(
            "Fig. 4",
            "Measured and predicted BSP matrix multiplication on the CM-5",
            "N",
            "ms",
        )
        .with(naive)
        .with(staggered)
        .with(predicted),
    )
}

/// Fig. 8: measured vs predicted MP-BPRAM matmul on the MasPar.
pub fn fig08(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ns = maspar_ns(scale);
    let mut measured = Series::new("Measured");
    let mut predicted = Series::new("Predicted (MP-BPRAM)");
    for &n in &ns {
        let r = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        assert!(r.verified);
        measured.push(pcm_core::DataPoint::new(n as f64, r.time.as_secs()));
        predicted.push(pcm_core::DataPoint::new(
            n as f64,
            predict::matmul::bpram(&plat.model_params(), n).as_secs(),
        ));
    }
    Output::Fig(
        Figure::new(
            "Fig. 8",
            "Measured and predicted MP-BPRAM matrix multiplication on the MasPar",
            "N",
            "s",
        )
        .with(measured)
        .with(predicted),
    )
}

/// Fig. 9: measured vs predicted MP-BPRAM matmul on the CM-5, with both
/// the nominal `alpha = 0.29` prediction and the cache-aware one.
pub fn fig09(scale: Scale, seed: u64) -> Output {
    let plat = Platform::cm5();
    let ns = cm5_ns(scale);
    let mut measured = Series::new("Measured");
    let mut predicted = Series::new("Predicted (alpha = 0.29)");
    let mut cache_aware = Series::new("Predicted (measured kernel)");
    for &n in &ns {
        let r = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        assert!(r.verified);
        measured.push(pcm_core::DataPoint::new(n as f64, r.time.as_millis()));
        let params = plat.model_params();
        predicted.push(pcm_core::DataPoint::new(
            n as f64,
            predict::matmul::bpram(&params, n).as_millis(),
        ));
        // Replace alpha with the kernel model's effective rate at the
        // local block shape — "provided that the local computations are
        // precisely modeled".
        let q = predict::matmul::q_for(plat.p());
        let mut precise = params.clone();
        precise.alpha_mm = pcm_machines::Cm5Compute::new().matmul_op_time(n / q, n / q, n / q);
        cache_aware.push(pcm_core::DataPoint::new(
            n as f64,
            predict::matmul::bpram(&precise, n).as_millis(),
        ));
    }
    Output::Fig(
        Figure::new(
            "Fig. 9",
            "Measured and predicted MP-BPRAM matrix multiplication on the CM-5",
            "N",
            "ms",
        )
        .with(measured)
        .with(predicted)
        .with(cache_aware),
    )
}

/// Fig. 16: Mflops of the staggered BSP vs MP-BPRAM variants on the CM-5.
pub fn fig16(scale: Scale, seed: u64) -> Output {
    let plat = Platform::cm5();
    let ns = cm5_ns(scale);
    let mut bsp = Series::new("BSP (staggered, short messages)");
    let mut bpram = Series::new("MP-BPRAM (block transfers)");
    for &n in &ns {
        let rs = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        let rb = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        assert!(rs.verified && rb.verified);
        bsp.push(pcm_core::DataPoint::new(n as f64, rs.stats.mflops));
        bpram.push(pcm_core::DataPoint::new(n as f64, rb.stats.mflops));
    }
    Output::Fig(
        Figure::new(
            "Fig. 16",
            "BSP vs MP-BPRAM matrix multiplication on the CM-5",
            "N",
            "Mflops",
        )
        .with(bsp)
        .with(bpram),
    )
}

/// Fig. 19: model-derived matmuls vs the `matmul` intrinsic analogue
/// (Cannon on the xnet) on the MasPar, in Mflops.
pub fn fig19(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ns = maspar_ns(scale);
    let mut mp_bsp = Series::new("MP-BSP (words)");
    let mut bpram = Series::new("MP-BPRAM (blocks)");
    let mut intrinsic = Series::new("matmul intrinsic (xnet Cannon)");
    for &n in &ns {
        let rw = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        let rb = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        let ri = vendor::maspar_matmul(&plat, n, seed);
        assert!(rw.verified && rb.verified && ri.verified);
        mp_bsp.push(pcm_core::DataPoint::new(n as f64, rw.stats.mflops));
        bpram.push(pcm_core::DataPoint::new(n as f64, rb.stats.mflops));
        intrinsic.push(pcm_core::DataPoint::new(n as f64, ri.stats.mflops));
    }
    Output::Fig(
        Figure::new(
            "Fig. 19",
            "Model-derived matrix multiplications vs the matmul intrinsic on the MasPar",
            "N",
            "Mflops",
        )
        .with(mp_bsp)
        .with(bpram)
        .with(intrinsic),
    )
}

/// Fig. 20: model-derived matmuls vs the CMSSL `gen_matrix_mult` analogue
/// on the CM-5, in Mflops.
pub fn fig20(scale: Scale, seed: u64) -> Output {
    let plat = Platform::cm5();
    let ns = cm5_ns(scale);
    let mut bsp = Series::new("BSP (staggered)");
    let mut bpram = Series::new("MP-BPRAM");
    let mut cmssl = Series::new("gen_matrix_mult (CMSSL)");
    for &n in &ns {
        let rs = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        let rb = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        let rc = vendor::cmssl_matmul(&plat, n, seed);
        assert!(rs.verified && rb.verified && rc.verified);
        bsp.push(pcm_core::DataPoint::new(n as f64, rs.stats.mflops));
        bpram.push(pcm_core::DataPoint::new(n as f64, rb.stats.mflops));
        cmssl.push(pcm_core::DataPoint::new(n as f64, rc.stats.mflops));
    }
    Output::Fig(
        Figure::new(
            "Fig. 20",
            "Model-derived matrix multiplications vs CMSSL gen_matrix_mult on the CM-5",
            "N",
            "Mflops",
        )
        .with(bsp)
        .with(bpram)
        .with(cmssl),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_prediction_tracks_measurement() {
        let Output::Fig(f) = fig03(Scale::Quick, 3) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let p = f.series_named("Predicted (MP-BSP)").unwrap();
        let dev = p.max_relative_deviation(m);
        assert!(dev < 0.25, "deviation {dev} (paper: < 14%)");
    }

    #[test]
    fn fig04_naive_is_slower_than_staggered_and_prediction() {
        let Output::Fig(f) = fig04(Scale::Quick, 4) else {
            panic!()
        };
        let naive = f.series_named("Measured (naive)").unwrap();
        let stag = f.series_named("Staggered").unwrap();
        let pred = f.series_named("Predicted (BSP)").unwrap();
        for &n in &[128.0, 256.0] {
            assert!(naive.y_at(n).unwrap() > stag.y_at(n).unwrap());
        }
        // The contention error at N = 256 is in the paper's ballpark.
        let err =
            (naive.y_at(256.0).unwrap() - pred.y_at(256.0).unwrap()) / pred.y_at(256.0).unwrap();
        assert!(err > 0.08 && err < 0.40, "contention error = {err}");
    }

    #[test]
    fn fig16_bpram_wins() {
        let Output::Fig(f) = fig16(Scale::Quick, 5) else {
            panic!()
        };
        let bsp = f.series_named("BSP (staggered, short messages)").unwrap();
        let bpram = f.series_named("MP-BPRAM (block transfers)").unwrap();
        assert!(bsp.dominated_by(bpram), "block transfers must win Mflops");
    }
}
