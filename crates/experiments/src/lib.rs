//! # pcm-experiments — the reproduction harness
//!
//! One driver per table and figure of Juurlink & Wijshoff (SPAA'96),
//! returning typed [`pcm_core::Figure`]/[`pcm_core::Table`] artifacts that
//! render as aligned plain text. The `reproduce` binary runs them:
//!
//! ```text
//! reproduce all            # every table and figure, paper-scale
//! reproduce --quick fig04  # reduced sweep of one figure
//! reproduce list           # what exists
//! ```
//!
//! [`paper`] carries the paper's reported anchor values for side-by-side
//! comparison in EXPERIMENTS.md.

pub mod apsp_figs;
pub mod calib_figs;
pub mod check;
pub mod domains;
pub mod granularity;
pub mod matmul_figs;
pub mod model_fit;
pub mod paper;
pub mod par;
pub mod report;
pub mod sort_figs;
pub mod table1;

pub use par::map_ordered;
pub use report::{find, registry, Experiment, Output, Scale};
