//! All-pairs shortest path figures: 12 (MasPar, E-BSP), 13 (GCel,
//! multinode-scatter refinement) and 15 (CM-5, BSP accurate).

use pcm_algos::apsp::{self, ApspVariant};
use pcm_core::{DataPoint, Figure, Series};
use pcm_machines::Platform;
use pcm_models::predict;

use crate::report::{Output, Scale};

/// Matrix sides swept by the full-scale APSP figures (12, 13, 15) on all
/// three machines: power-of-two multiples of the block grid side.
pub fn full_ns() -> Vec<usize> {
    vec![64, 128, 256, 512]
}

fn measured_series(plat: &Platform, ns: &[usize], seed: u64) -> Series {
    let mut s = Series::new("Measured");
    for &n in ns {
        let r = apsp::run(plat, n, ApspVariant::Words, seed);
        assert!(r.verified, "APSP result check failed at N = {n}");
        s.push(DataPoint::new(n as f64, r.time.as_secs()));
    }
    s
}

/// Fig. 12: APSP on the MasPar — MP-BSP overestimates badly (unbalanced
/// communication), E-BSP with `T_unb` lands close.
pub fn fig12(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    // On the MasPar M = N/32 must be a power of two for the doubling
    // phase, so the sweep uses power-of-two multiples of 32.
    let ns: Vec<usize> = match scale {
        Scale::Full => full_ns(),
        Scale::Quick => vec![128, 256],
    };
    let params = plat.model_params();
    let measured = measured_series(&plat, &ns, seed);
    let mp_bsp = Series::from_points(
        "Predicted (MP-BSP)",
        ns.iter()
            .map(|&n| (n as f64, predict::apsp::mp_bsp(&params, n).as_secs())),
    );
    let ebsp = Series::from_points(
        "Predicted (E-BSP)",
        ns.iter()
            .map(|&n| (n as f64, predict::apsp::ebsp(&params, n).as_secs())),
    );
    Output::Fig(
        Figure::new(
            "Fig. 12",
            "Predicted and measured execution times of APSP on the MasPar",
            "N",
            "s",
        )
        .with(measured)
        .with(mp_bsp)
        .with(ebsp),
    )
}

/// Fig. 13: APSP on the GCel — plain BSP vs the `g_mscat`-refined
/// prediction.
pub fn fig13(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let ns: Vec<usize> = match scale {
        Scale::Full => full_ns(),
        Scale::Quick => vec![64, 128],
    };
    let params = plat.model_params();
    let measured = measured_series(&plat, &ns, seed);
    let bsp = Series::from_points(
        "Predicted (BSP)",
        ns.iter()
            .map(|&n| (n as f64, predict::apsp::bsp(&params, n).as_secs())),
    );
    let refined = Series::from_points(
        "Predicted (g_mscat refined)",
        ns.iter()
            .map(|&n| (n as f64, predict::apsp::gcel_refined(&params, n).as_secs())),
    );
    Output::Fig(
        Figure::new(
            "Fig. 13",
            "Predicted and measured execution times of APSP on the GCel",
            "N",
            "s",
        )
        .with(measured)
        .with(bsp)
        .with(refined),
    )
}

/// Fig. 15: APSP on the CM-5 — BSP predicts accurately thanks to the fat
/// tree's bisection bandwidth.
pub fn fig15(scale: Scale, seed: u64) -> Output {
    let plat = Platform::cm5();
    let ns: Vec<usize> = match scale {
        Scale::Full => full_ns(),
        Scale::Quick => vec![64, 128],
    };
    let params = plat.model_params();
    let measured = measured_series(&plat, &ns, seed);
    let bsp = Series::from_points(
        "Predicted (BSP)",
        ns.iter()
            .map(|&n| (n as f64, predict::apsp::bsp(&params, n).as_secs())),
    );
    Output::Fig(
        Figure::new(
            "Fig. 15",
            "Predicted and measured execution times of APSP on the CM-5",
            "N",
            "s",
        )
        .with(measured)
        .with(bsp),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_ebsp_beats_mp_bsp() {
        let Output::Fig(f) = fig12(Scale::Quick, 2) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let mp = f.series_named("Predicted (MP-BSP)").unwrap();
        let eb = f.series_named("Predicted (E-BSP)").unwrap();
        let mp_err = mp.max_relative_deviation(m);
        let eb_err = eb.max_relative_deviation(m);
        assert!(
            eb_err < mp_err,
            "E-BSP ({eb_err:.2}) must beat MP-BSP ({mp_err:.2})"
        );
        assert!(mp_err > 0.3, "MP-BSP should err substantially: {mp_err:.2}");
        assert!(eb_err < 0.35, "E-BSP should be close: {eb_err:.2}");
    }

    #[test]
    fn fig13_refinement_improves_gcel_prediction() {
        let Output::Fig(f) = fig13(Scale::Quick, 3) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let bsp = f.series_named("Predicted (BSP)").unwrap();
        let refined = f.series_named("Predicted (g_mscat refined)").unwrap();
        assert!(
            refined.max_relative_deviation(m) < bsp.max_relative_deviation(m),
            "the scatter refinement must improve the estimate"
        );
    }

    #[test]
    fn fig15_bsp_is_accurate_on_cm5() {
        let Output::Fig(f) = fig15(Scale::Quick, 4) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let p = f.series_named("Predicted (BSP)").unwrap();
        assert!(p.max_relative_deviation(m) < 0.25);
    }
}
