//! Experiment registry and output types.

use pcm_core::{Figure, Table};

/// Problem-size scale of a reproduction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale sweeps (minutes).
    Full,
    /// Reduced sweeps for tests and benches (seconds).
    Quick,
}

/// A reproduced artifact: a figure or a table.
#[derive(Clone, Debug)]
pub enum Output {
    /// A figure with one or more series.
    Fig(Figure),
    /// A table.
    Tab(Table),
}

impl Output {
    /// Renders as plain text (aligned value table, plus an ASCII chart for
    /// figures).
    pub fn render(&self) -> String {
        match self {
            Output::Fig(f) => {
                let mut text = f.render();
                let chart = pcm_core::plot::render_ascii(f, pcm_core::plot::PlotSize::default());
                if !chart.is_empty() {
                    text.push('\n');
                    text.push_str(&chart);
                }
                text
            }
            Output::Tab(t) => t.render(),
        }
    }

    /// The artifact id ("Fig. 4", "Table 1").
    pub fn id(&self) -> &str {
        match self {
            Output::Fig(f) => &f.id,
            Output::Tab(t) => &t.id,
        }
    }

    /// The figure, if this is one.
    pub fn figure(&self) -> Option<&Figure> {
        match self {
            Output::Fig(f) => Some(f),
            Output::Tab(_) => None,
        }
    }
}

/// A registered reproduction experiment.
pub struct Experiment {
    /// Short id used on the CLI: "table1", "fig04", ...
    pub id: &'static str,
    /// What the paper's artifact shows.
    pub title: &'static str,
    /// The driver.
    pub run: fn(Scale, u64) -> Output,
}

/// The full registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "(MP-)BSP and MP-BPRAM machine parameters",
            run: crate::table1::run,
        },
        Experiment {
            id: "fig01",
            title: "1-h relation time on the MasPar",
            run: crate::calib_figs::fig01,
        },
        Experiment {
            id: "fig02",
            title: "Partial permutations vs active PEs on the MasPar",
            run: crate::calib_figs::fig02,
        },
        Experiment {
            id: "fig03",
            title: "MP-BSP matrix multiplication on the MasPar",
            run: crate::matmul_figs::fig03,
        },
        Experiment {
            id: "fig04",
            title: "BSP matrix multiplication on the CM-5 (naive vs staggered)",
            run: crate::matmul_figs::fig04,
        },
        Experiment {
            id: "fig05",
            title: "Bitonic sort time/key on the MasPar (MP-BSP)",
            run: crate::sort_figs::fig05,
        },
        Experiment {
            id: "fig06",
            title: "Bitonic sort time/key on the GCel (BSP, drift vs resync)",
            run: crate::sort_figs::fig06,
        },
        Experiment {
            id: "fig07",
            title: "h-h permutations vs random h-relations on the GCel",
            run: crate::calib_figs::fig07,
        },
        Experiment {
            id: "fig08",
            title: "MP-BPRAM matrix multiplication on the MasPar",
            run: crate::matmul_figs::fig08,
        },
        Experiment {
            id: "fig09",
            title: "MP-BPRAM matrix multiplication on the CM-5",
            run: crate::matmul_figs::fig09,
        },
        Experiment {
            id: "fig10",
            title: "MP-BPRAM bitonic sort time/key on the MasPar",
            run: crate::sort_figs::fig10,
        },
        Experiment {
            id: "fig11",
            title: "MP-BPRAM bitonic sort time/key on the GCel",
            run: crate::sort_figs::fig11,
        },
        Experiment {
            id: "fig12",
            title: "APSP on the MasPar (MP-BSP vs E-BSP vs measured)",
            run: crate::apsp_figs::fig12,
        },
        Experiment {
            id: "fig13",
            title: "APSP on the GCel (BSP vs g_mscat-refined vs measured)",
            run: crate::apsp_figs::fig13,
        },
        Experiment {
            id: "fig14",
            title: "Full h-relations vs multinode scatters on the GCel",
            run: crate::calib_figs::fig14,
        },
        Experiment {
            id: "fig15",
            title: "APSP on the CM-5",
            run: crate::apsp_figs::fig15,
        },
        Experiment {
            id: "fig16",
            title: "BSP vs MP-BPRAM matrix multiplication Mflops on the CM-5",
            run: crate::matmul_figs::fig16,
        },
        Experiment {
            id: "fig17",
            title: "MP-BSP vs MP-BPRAM bitonic sort on the MasPar",
            run: crate::sort_figs::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Bitonic vs sample sort time/key on the GCel",
            run: crate::sort_figs::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Model-derived matmuls vs the matmul intrinsic on the MasPar",
            run: crate::matmul_figs::fig19,
        },
        Experiment {
            id: "fig20",
            title: "Model-derived matmuls vs CMSSL gen_matrix_mult on the CM-5",
            run: crate::matmul_figs::fig20,
        },
        Experiment {
            id: "sec8",
            title: "Message-granularity study (Section 8 conclusions)",
            run: crate::granularity::run,
        },
        Experiment {
            id: "modelfit",
            title: "Trace accounting: which model explains which machine",
            run: crate::model_fit::run,
        },
    ]
}

/// Finds an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table_and_all_figures() {
        let reg = registry();
        assert_eq!(reg.len(), 23, "Table 1 + Figs 1..20 + Sec. 8 + model fit");
        let ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        assert!(ids.contains(&"table1"));
        for n in 1..=20 {
            let id = format!("fig{n:02}");
            assert!(ids.contains(&id.as_str()), "missing {id}");
        }
    }

    #[test]
    fn find_by_id() {
        assert!(find("fig04").is_some());
        assert!(find("fig99").is_none());
    }
}
