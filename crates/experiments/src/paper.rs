//! Anchor values reported in the paper's text, used by EXPERIMENTS.md and
//! by the shape assertions of the integration tests.
//!
//! Absolute times on our simulators are not expected to equal the authors'
//! testbed measurements exactly; the anchors pin down the *shape*: who
//! wins, by what factor, and where the models err.

/// Fig. 3: the MP-BSP matmul prediction error on the MasPar stays under
/// 14%.
pub const FIG3_MAX_DEVIATION: f64 = 0.14;

/// Fig. 4: at `N = 256` the BSP model predicts 188 ms but the naive
/// implementation measures 227 ms — a 21% error from receiver contention.
pub const FIG4_PREDICTED_MS: f64 = 188.0;
/// See [`FIG4_PREDICTED_MS`].
pub const FIG4_NAIVE_MEASURED_MS: f64 = 227.0;
/// The relative contention error at `N = 256`.
pub const FIG4_CONTENTION_ERROR: f64 = 0.21;

/// Fig. 5: MP-BSP overestimates bitonic on the MasPar by almost 2.0x
/// (the router routes the bit-flip pattern at ~590 µs vs the ~1300 µs of a
/// random permutation).
pub const FIG5_OVERESTIMATE: f64 = 2.0;

/// Fig. 8: MP-BPRAM matmul errors on the MasPar are below 3%... on the
/// authors' machine. Our simulator adds router jitter; 10% is the
/// assertion bound.
pub const FIG8_MAX_DEVIATION: f64 = 0.10;

/// Fig. 12: at `N = 512` MP-BSP predicts 53.9 s, measured 30.3 s (78% off
/// when stated relative to the measurement); E-BSP lands close.
pub const FIG12_MPBSP_PREDICTED_S: f64 = 53.9;
/// See [`FIG12_MPBSP_PREDICTED_S`].
pub const FIG12_MEASURED_S: f64 = 30.3;

/// Fig. 14: multinode scatters are up to a factor 9.1 cheaper than full
/// h-relations on the GCel.
pub const FIG14_SCATTER_FACTOR: f64 = 9.1;

/// Fig. 16: at `N = 512` the MP-BPRAM version reaches 366 Mflops vs 256
/// for the staggered BSP variant — a 43% improvement.
pub const FIG16_BPRAM_MFLOPS: f64 = 366.0;
/// See [`FIG16_BPRAM_MFLOPS`].
pub const FIG16_BSP_MFLOPS: f64 = 256.0;

/// Fig. 17: grouping words into blocks buys about 2.1x on MasPar bitonic,
/// bounded by `(g+L)/(w·sigma) = 3.3`.
pub const FIG17_IMPROVEMENT: f64 = 2.1;
/// See [`FIG17_IMPROVEMENT`].
pub const FIG17_BOUND: f64 = 3.3;

/// Section 6: with 4K keys/processor on the GCel the synchronized BSP
/// bitonic needs 86.1 ms/key, the MP-BPRAM variant only 1.36 ms/key.
pub const GCEL_BITONIC_BSP_MS_PER_KEY: f64 = 86.1;
/// See [`GCEL_BITONIC_BSP_MS_PER_KEY`].
pub const GCEL_BITONIC_BPRAM_MS_PER_KEY: f64 = 1.36;

/// Fig. 19: at `N = 700` the MP-BPRAM matmul reaches 39.9 Mflops and the
/// matmul intrinsic 61.7 Mflops — a 35% penalty for model portability.
pub const FIG19_MODEL_MFLOPS: f64 = 39.9;
/// See [`FIG19_MODEL_MFLOPS`].
pub const FIG19_INTRINSIC_MFLOPS: f64 = 61.7;

/// Fig. 20: the MP-BPRAM version peaks at 372 Mflops; CMSSL's
/// `gen_matrix_mult` never exceeds 151 Mflops.
pub const FIG20_MODEL_PEAK_MFLOPS: f64 = 372.0;
/// See [`FIG20_MODEL_PEAK_MFLOPS`].
pub const FIG20_CMSSL_MAX_MFLOPS: f64 = 151.0;
