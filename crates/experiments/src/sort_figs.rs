//! Sorting figures: 5, 6, 10, 11 (evaluation), 17 and 18 (comparison).
//! All plot "time per key" — total time divided by the keys per processor.

use pcm_algos::sort::bitonic::{self, ExchangeMode};
use pcm_algos::sort::sample::{self, SampleVariant};
use pcm_core::{DataPoint, Figure, Series};
use pcm_machines::Platform;
use pcm_models::predict;

use crate::report::{Output, Scale};

/// Keys per processor swept by the MasPar bitonic figures (5, 10, 17).
pub fn maspar_ms(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![64, 128, 256, 512, 1024, 2048],
        Scale::Quick => vec![64, 256],
    }
}

/// Keys per processor swept by the GCel bitonic figures (6, 11).
pub fn gcel_ms(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![256, 512, 1024, 2048, 4096],
        Scale::Quick => vec![256, 1024],
    }
}

/// Keys per processor swept by the Fig. 18 sample-sort comparison.
pub fn fig18_ms(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![64, 128, 256, 512, 1024],
        Scale::Quick => vec![128, 512, 1024],
    }
}

fn per_key_series(
    label: &str,
    plat: &Platform,
    ms: &[usize],
    mode: ExchangeMode,
    seed: u64,
) -> Series {
    let mut s = Series::new(label);
    for &m in ms {
        let r = bitonic::run(plat, m, mode, seed);
        assert!(r.verified, "bitonic failed to sort at M = {m}");
        s.push(DataPoint::new(m as f64, r.time.as_micros() / m as f64));
    }
    s
}

fn predicted_series(label: &str, ms: &[usize], f: impl Fn(usize) -> pcm_core::SimTime) -> Series {
    Series::from_points(
        label,
        ms.iter().map(|&m| (m as f64, f(m).as_micros() / m as f64)),
    )
}

/// Fig. 5: measured vs MP-BSP-predicted time per key of bitonic sort on
/// the MasPar — the model overestimates by ~2x because the bit-flip
/// exchange is cheap on the router.
pub fn fig05(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ms = maspar_ms(scale);
    let params = plat.model_params();
    let measured = per_key_series("Measured", &plat, &ms, ExchangeMode::Words, seed);
    let predicted = predicted_series("Predicted (MP-BSP)", &ms, |m| {
        predict::bitonic::mp_bsp(&params, m)
    });
    Output::Fig(
        Figure::new(
            "Fig. 5",
            "Measured and predicted times per key of bitonic sort on the MasPar",
            "keys per processor",
            "µs/key",
        )
        .with(measured)
        .with(predicted),
    )
}

/// Fig. 6: bitonic time per key on the GCel — unsynchronized BSP drifts;
/// a barrier every 256 messages restores the prediction.
pub fn fig06(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let ms = gcel_ms(scale);
    let params = plat.model_params();
    let unsynced = per_key_series(
        "Measured (no resync)",
        &plat,
        &ms,
        ExchangeMode::Words,
        seed,
    );
    let synced = per_key_series(
        "Measured (barrier every 256)",
        &plat,
        &ms,
        ExchangeMode::WordsResync { interval: 256 },
        seed,
    );
    let predicted = predicted_series("Predicted (BSP)", &ms, |m| {
        predict::bitonic::bsp(&params, m)
    });
    Output::Fig(
        Figure::new(
            "Fig. 6",
            "Measured and predicted times per key of bitonic sort on the GCel",
            "keys per processor",
            "µs/key",
        )
        .with(unsynced)
        .with(synced)
        .with(predicted),
    )
}

/// Fig. 10: MP-BPRAM bitonic on the MasPar — blocks are less sensitive to
/// the pattern, so the overestimate shrinks but does not vanish.
pub fn fig10(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ms = maspar_ms(scale);
    let params = plat.model_params();
    let measured = per_key_series("Measured", &plat, &ms, ExchangeMode::Block, seed);
    let predicted = predicted_series("Predicted (MP-BPRAM)", &ms, |m| {
        predict::bitonic::bpram(&params, m)
    });
    Output::Fig(
        Figure::new(
            "Fig. 10",
            "Measured and predicted times per key of MP-BPRAM bitonic sort on the MasPar",
            "keys per processor",
            "µs/key",
        )
        .with(measured)
        .with(predicted),
    )
}

/// Fig. 11: MP-BPRAM bitonic on the GCel — the predictions "almost
/// coincide with the measured data points".
pub fn fig11(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let ms = gcel_ms(scale);
    let params = plat.model_params();
    let measured = per_key_series("Measured", &plat, &ms, ExchangeMode::Block, seed);
    let predicted = predicted_series("Predicted (MP-BPRAM)", &ms, |m| {
        predict::bitonic::bpram(&params, m)
    });
    Output::Fig(
        Figure::new(
            "Fig. 11",
            "Measured and estimated times per key of bitonic sort on the GCel",
            "keys per processor",
            "µs/key",
        )
        .with(measured)
        .with(predicted),
    )
}

/// Fig. 17: MP-BSP vs MP-BPRAM bitonic on the MasPar — the bulk-transfer
/// gain, about 2.1x against the 3.3x bound.
pub fn fig17(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let ms = maspar_ms(scale);
    let words = per_key_series("MP-BSP (words)", &plat, &ms, ExchangeMode::Words, seed);
    let blocks = per_key_series("MP-BPRAM (blocks)", &plat, &ms, ExchangeMode::Block, seed);
    Output::Fig(
        Figure::new(
            "Fig. 17",
            "MP-BSP vs MP-BPRAM bitonic sort on the MasPar",
            "keys per processor",
            "µs/key",
        )
        .with(words)
        .with(blocks),
    )
}

/// Fig. 18: MP-BPRAM bitonic vs sample sort (padded single-port routing)
/// vs the staggered direct variant, on the GCel.
///
/// The sweep covers the startup-dominated regime the paper plots (the
/// `4·sqrt(P)·ell` term of the send phase); at several thousand keys per
/// processor the per-key startup amortizes and sample sort catches up with
/// bitonic — see EXPERIMENTS.md.
pub fn fig18(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let ms = fig18_ms(scale);
    let oversampling = 64;
    let bitonic_s = per_key_series("Bitonic (MP-BPRAM)", &plat, &ms, ExchangeMode::Block, seed);
    let mut sample_s = Series::new("Sample sort (MP-BPRAM)");
    let mut staggered_s = Series::new("Sample sort (staggered direct)");
    for &m in &ms {
        let r = sample::run(&plat, m, oversampling, SampleVariant::Bpram, seed);
        assert!(r.verified, "sample sort failed at M = {m}");
        sample_s.push(DataPoint::new(m as f64, r.time.as_micros() / m as f64));
        let r = sample::run(&plat, m, oversampling, SampleVariant::BpramStaggered, seed);
        assert!(r.verified);
        staggered_s.push(DataPoint::new(m as f64, r.time.as_micros() / m as f64));
    }
    Output::Fig(
        Figure::new(
            "Fig. 18",
            "Measured times per key of MP-BPRAM bitonic and sample sort on the GCel",
            "keys per processor",
            "µs/key",
        )
        .with(bitonic_s)
        .with(sample_s)
        .with(staggered_s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_model_overestimates_by_about_two() {
        let Output::Fig(f) = fig05(Scale::Quick, 2) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let p = f.series_named("Predicted (MP-BSP)").unwrap();
        let ratio = p.y_at(256.0).unwrap() / m.y_at(256.0).unwrap();
        assert!(
            ratio > 1.5 && ratio < 2.8,
            "MP-BSP should overestimate ~2x, got {ratio}"
        );
    }

    #[test]
    fn fig06_resync_restores_the_prediction() {
        let Output::Fig(f) = fig06(Scale::Quick, 3) else {
            panic!()
        };
        let synced = f.series_named("Measured (barrier every 256)").unwrap();
        let pred = f.series_named("Predicted (BSP)").unwrap();
        let dev = pred.max_relative_deviation(synced);
        assert!(dev < 0.25, "synced deviation = {dev}");
        let unsynced = f.series_named("Measured (no resync)").unwrap();
        assert!(
            unsynced.y_at(1024.0).unwrap() > 1.3 * synced.y_at(1024.0).unwrap(),
            "drift should show at M = 1024"
        );
    }

    #[test]
    fn fig11_bpram_is_accurate_on_gcel() {
        let Output::Fig(f) = fig11(Scale::Quick, 4) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let p = f.series_named("Predicted (MP-BPRAM)").unwrap();
        assert!(p.max_relative_deviation(m) < 0.15);
    }

    #[test]
    fn fig17_bulk_gain_within_bound() {
        let Output::Fig(f) = fig17(Scale::Quick, 5) else {
            panic!()
        };
        let w = f.series_named("MP-BSP (words)").unwrap();
        let b = f.series_named("MP-BPRAM (blocks)").unwrap();
        let ratio = w.y_at(256.0).unwrap() / b.y_at(256.0).unwrap();
        assert!(ratio > 1.3 && ratio < 3.3, "gain {ratio}, bound 3.3");
    }
}
