//! Table 1: the machine parameters, as re-measured on the simulators.

use crate::report::{Output, Scale};

/// Runs the calibration suite and renders Table 1.
pub fn run(scale: Scale, seed: u64) -> Output {
    let trials = match scale {
        Scale::Full => 10,
        Scale::Quick => 2,
    };
    Output::Tab(pcm_calibrate::table1(trials, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_machines() {
        let out = run(Scale::Quick, 1);
        let Output::Tab(t) = out else {
            panic!("expected a table")
        };
        assert_eq!(t.rows.len(), 3);
        assert!(t.cell("MasPar", "P").is_some());
        assert!(t.cell("CM-5", "sigma").is_some());
    }
}
