//! `reproduce check`: one-command validation of the paper's claims.
//!
//! Runs the quick-scale experiments and asserts the *shape* statements the
//! paper makes — who wins, by what factor, where the models err. The same
//! claims are enforced by the integration test suite; this module gives a
//! repository user a single command that prints a PASS/FAIL line per
//! claim without involving the test harness.

use crate::report::{Output, Scale};
use crate::{apsp_figs, calib_figs, granularity, matmul_figs, sort_figs};

/// One verifiable claim from the paper.
pub struct Claim {
    /// Short identifier.
    pub id: &'static str,
    /// The paper's statement.
    pub statement: &'static str,
    /// Returns `Ok(details)` or `Err(what went wrong)`.
    pub verify: fn(Scale, u64) -> Result<String, String>,
}

fn fig(out: Output) -> pcm_core::Figure {
    match out {
        Output::Fig(f) => f,
        Output::Tab(_) => unreachable!("claim drivers return figures"),
    }
}

fn check_fig03(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(matmul_figs::fig03(scale, seed));
    let dev = f
        .series_named("Predicted (MP-BSP)")
        .unwrap()
        .max_relative_deviation(f.series_named("Measured").unwrap());
    if dev < 0.22 {
        Ok(format!("max deviation {:.1}% (paper: <14%)", dev * 100.0))
    } else {
        Err(format!("deviation {:.1}% too large", dev * 100.0))
    }
}

fn check_fig04(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(matmul_figs::fig04(scale, seed));
    let naive = f.series_named("Measured (naive)").unwrap();
    let pred = f.series_named("Predicted (BSP)").unwrap();
    let err = (naive.y_at(256.0).ok_or("no N=256 point")?
        - pred.y_at(256.0).unwrap())
        / pred.y_at(256.0).unwrap();
    if (err - 0.21).abs() < 0.12 {
        Ok(format!("contention error {:.0}% (paper: 21%)", err * 100.0))
    } else {
        Err(format!("contention error {:.0}% off the paper's 21%", err * 100.0))
    }
}

fn check_fig05(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(sort_figs::fig05(scale, seed));
    let ratio = f.series_named("Predicted (MP-BSP)").unwrap().y_at(256.0).unwrap()
        / f.series_named("Measured").unwrap().y_at(256.0).unwrap();
    if ratio > 1.5 && ratio < 2.8 {
        Ok(format!("MP-BSP overestimates {ratio:.1}x (paper: ~2.0x)"))
    } else {
        Err(format!("overestimate {ratio:.1}x outside ~2x"))
    }
}

fn check_fig06(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(sort_figs::fig06(scale, seed));
    let synced = f.series_named("Measured (barrier every 256)").unwrap();
    let unsynced = f.series_named("Measured (no resync)").unwrap();
    let pred = f.series_named("Predicted (BSP)").unwrap();
    let dev = pred.max_relative_deviation(synced);
    let drifted = unsynced.y_at(1024.0).unwrap() > 1.2 * synced.y_at(1024.0).unwrap();
    if dev < 0.2 && drifted {
        Ok(format!("resync restores prediction ({:.0}% dev); drift visible", dev * 100.0))
    } else {
        Err(format!("dev {:.2}, drift visible: {drifted}", dev))
    }
}

fn check_fig12(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(apsp_figs::fig12(scale, seed));
    let m = f.series_named("Measured").unwrap();
    let mp = f.series_named("Predicted (MP-BSP)").unwrap().max_relative_deviation(m);
    let eb = f.series_named("Predicted (E-BSP)").unwrap().max_relative_deviation(m);
    if mp > 0.5 && eb < 0.35 {
        Ok(format!("MP-BSP errs {:.0}%, E-BSP {:.0}%", mp * 100.0, eb * 100.0))
    } else {
        Err(format!("MP-BSP {:.0}% / E-BSP {:.0}%", mp * 100.0, eb * 100.0))
    }
}

fn check_fig14(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(calib_figs::fig14(scale, seed));
    let full = f.series_named("Full h-relations").unwrap();
    let scat = f.series_named("Multinode scatters").unwrap();
    let factor = full.y_at(56.0).unwrap() / scat.y_at(56.0).unwrap();
    if factor > 5.0 && factor < 12.0 {
        Ok(format!("scatter {factor:.1}x cheaper (paper: up to 9.1x)"))
    } else {
        Err(format!("factor {factor:.1} out of range"))
    }
}

fn check_fig19(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(matmul_figs::fig19(scale, seed));
    let model = f.series_named("MP-BPRAM (blocks)").unwrap();
    let intrinsic = f.series_named("matmul intrinsic (xnet Cannon)").unwrap();
    if model.dominated_by(intrinsic) {
        let n = *model.xs().last().unwrap();
        let penalty = 1.0 - model.y_at(n).unwrap() / intrinsic.y_at(n).unwrap();
        Ok(format!("intrinsic wins; penalty {:.0}% (paper: 35%)", penalty * 100.0))
    } else {
        Err("the intrinsic did not dominate".into())
    }
}

fn check_fig20(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig(matmul_figs::fig20(scale, seed));
    let model = f.series_named("MP-BPRAM").unwrap();
    let cmssl = f.series_named("gen_matrix_mult (CMSSL)").unwrap();
    if cmssl.dominated_by(model) {
        let peak = cmssl.ys().into_iter().fold(0.0f64, f64::max);
        Ok(format!("model versions win; CMSSL peaks at {peak:.0} Mflops (paper: <=151)"))
    } else {
        Err("CMSSL unexpectedly won".into())
    }
}

fn check_sec8(scale: Scale, seed: u64) -> Result<String, String> {
    let Output::Tab(t) = granularity::run(scale, seed) else {
        return Err("expected a table".into());
    };
    let ratio = |m: &str| -> f64 { t.cell(m, "ratio @16 B").unwrap().parse().unwrap() };
    let (mp, c5) = (ratio("MasPar"), ratio("CM-5"));
    if (mp - 1.37).abs() < 0.45 && (c5 - 2.1).abs() < 0.7 {
        Ok(format!("16-byte ratios: MasPar {mp:.2} (1.37), CM-5 {c5:.2} (2.1)"))
    } else {
        Err(format!("ratios MasPar {mp:.2} / CM-5 {c5:.2}"))
    }
}

/// All registered claims.
pub fn claims() -> Vec<Claim> {
    vec![
        Claim {
            id: "fig03",
            statement: "MP-BSP predicts the MasPar matmul within ~14%",
            verify: check_fig03,
        },
        Claim {
            id: "fig04",
            statement: "unstaggered sends cost ~21% on the CM-5 (receiver contention)",
            verify: check_fig04,
        },
        Claim {
            id: "fig05",
            statement: "MP-BSP overestimates MasPar bitonic ~2x (cheap router pattern)",
            verify: check_fig05,
        },
        Claim {
            id: "fig06",
            statement: "GCel drift breaks BSP; a barrier every 256 messages restores it",
            verify: check_fig06,
        },
        Claim {
            id: "fig12",
            statement: "unbalanced communication breaks MP-BSP on MasPar APSP; E-BSP is close",
            verify: check_fig12,
        },
        Claim {
            id: "fig14",
            statement: "GCel multinode scatters are up to 9.1x cheaper than h-relations",
            verify: check_fig14,
        },
        Claim {
            id: "fig19",
            statement: "the MasPar matmul intrinsic beats the model-derived codes (~35%)",
            verify: check_fig19,
        },
        Claim {
            id: "fig20",
            statement: "the model-derived codes beat CMSSL gen_matrix_mult (<=151 Mflops)",
            verify: check_fig20,
        },
        Claim {
            id: "sec8",
            statement: "16-byte messages close the bulk gap to 1.37 (MasPar) / 2.1 (CM-5)",
            verify: check_sec8,
        },
    ]
}

/// Runs every claim; returns `(passed, failed)`.
pub fn run_all(scale: Scale, seed: u64, mut report: impl FnMut(&Claim, &Result<String, String>)) -> (usize, usize) {
    let mut pass = 0;
    let mut fail = 0;
    for claim in claims() {
        let result = (claim.verify)(scale, seed);
        if result.is_ok() {
            pass += 1;
        } else {
            fail += 1;
        }
        report(&claim, &result);
    }
    (pass, fail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes_at_quick_scale() {
        let (pass, fail) = run_all(Scale::Quick, 1996, |claim, result| {
            if let Err(e) = result {
                eprintln!("claim {} failed: {e}", claim.id);
            }
        });
        assert_eq!(fail, 0, "{pass} passed, {fail} failed");
    }

    #[test]
    fn claims_have_unique_ids() {
        let mut ids: Vec<&str> = claims().iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
