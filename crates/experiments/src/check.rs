//! `reproduce check`: one-command validation of the paper's claims.
//!
//! Runs the quick-scale experiments and asserts the *shape* statements the
//! paper makes — who wins, by what factor, where the models err. The same
//! claims are enforced by the integration test suite; this module gives a
//! repository user a single command that prints a PASS/FAIL line per
//! claim without involving the test harness.
//!
//! Checkers never panic on malformed driver output: every lookup failure
//! propagates as an `Err` naming the figure it came from, so a broken
//! driver turns into a FAIL line instead of a crash.

use pcm_core::{Figure, Series};

use crate::report::{Output, Scale};
use crate::{apsp_figs, calib_figs, granularity, matmul_figs, sort_figs};

/// One verifiable claim from the paper.
pub struct Claim {
    /// Short identifier.
    pub id: &'static str,
    /// The paper's statement.
    pub statement: &'static str,
    /// Returns `Ok(details)` or `Err(what went wrong)`.
    pub verify: fn(Scale, u64) -> Result<String, String>,
}

fn fig(figure: &str, out: Output) -> Result<Figure, String> {
    match out {
        Output::Fig(f) => Ok(f),
        Output::Tab(_) => Err(format!(
            "{figure}: driver returned a table, expected a figure"
        )),
    }
}

/// Looks up a named series, failing with the figure id when absent.
fn series<'a>(figure: &str, f: &'a Figure, name: &str) -> Result<&'a Series, String> {
    f.series_named(name)
        .ok_or_else(|| format!("{figure}: series '{name}' missing"))
}

/// Looks up the y value at `x`, failing with the figure id when absent.
fn y_at(figure: &str, s: &Series, x: f64) -> Result<f64, String> {
    s.y_at(x)
        .ok_or_else(|| format!("{figure}: series '{}' has no point at x = {x}", s.label))
}

fn check_fig03(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig03", matmul_figs::fig03(scale, seed))?;
    let dev = series("fig03", &f, "Predicted (MP-BSP)")?
        .max_relative_deviation(series("fig03", &f, "Measured")?);
    if dev < 0.22 {
        Ok(format!("max deviation {:.1}% (paper: <14%)", dev * 100.0))
    } else {
        Err(format!("deviation {:.1}% too large", dev * 100.0))
    }
}

fn check_fig04(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig04", matmul_figs::fig04(scale, seed))?;
    let naive = series("fig04", &f, "Measured (naive)")?;
    let pred = series("fig04", &f, "Predicted (BSP)")?;
    let at_256 = y_at("fig04", pred, 256.0)?;
    let err = (y_at("fig04", naive, 256.0)? - at_256) / at_256;
    if (err - 0.21).abs() < 0.12 {
        Ok(format!("contention error {:.0}% (paper: 21%)", err * 100.0))
    } else {
        Err(format!(
            "contention error {:.0}% off the paper's 21%",
            err * 100.0
        ))
    }
}

fn check_fig05(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig05", sort_figs::fig05(scale, seed))?;
    let ratio = y_at("fig05", series("fig05", &f, "Predicted (MP-BSP)")?, 256.0)?
        / y_at("fig05", series("fig05", &f, "Measured")?, 256.0)?;
    if ratio > 1.5 && ratio < 2.8 {
        Ok(format!("MP-BSP overestimates {ratio:.1}x (paper: ~2.0x)"))
    } else {
        Err(format!("overestimate {ratio:.1}x outside ~2x"))
    }
}

fn check_fig06(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig06", sort_figs::fig06(scale, seed))?;
    let synced = series("fig06", &f, "Measured (barrier every 256)")?;
    let unsynced = series("fig06", &f, "Measured (no resync)")?;
    let pred = series("fig06", &f, "Predicted (BSP)")?;
    let dev = pred.max_relative_deviation(synced);
    let drifted = y_at("fig06", unsynced, 1024.0)? > 1.2 * y_at("fig06", synced, 1024.0)?;
    if dev < 0.2 && drifted {
        Ok(format!(
            "resync restores prediction ({:.0}% dev); drift visible",
            dev * 100.0
        ))
    } else {
        Err(format!("dev {dev:.2}, drift visible: {drifted}"))
    }
}

fn check_fig12(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig12", apsp_figs::fig12(scale, seed))?;
    let m = series("fig12", &f, "Measured")?;
    let mp = series("fig12", &f, "Predicted (MP-BSP)")?.max_relative_deviation(m);
    let eb = series("fig12", &f, "Predicted (E-BSP)")?.max_relative_deviation(m);
    if mp > 0.5 && eb < 0.35 {
        Ok(format!(
            "MP-BSP errs {:.0}%, E-BSP {:.0}%",
            mp * 100.0,
            eb * 100.0
        ))
    } else {
        Err(format!(
            "MP-BSP {:.0}% / E-BSP {:.0}%",
            mp * 100.0,
            eb * 100.0
        ))
    }
}

fn check_fig14(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig14", calib_figs::fig14(scale, seed))?;
    let full = series("fig14", &f, "Full h-relations")?;
    let scat = series("fig14", &f, "Multinode scatters")?;
    let factor = y_at("fig14", full, 56.0)? / y_at("fig14", scat, 56.0)?;
    if factor > 5.0 && factor < 12.0 {
        Ok(format!("scatter {factor:.1}x cheaper (paper: up to 9.1x)"))
    } else {
        Err(format!("factor {factor:.1} out of range"))
    }
}

fn check_fig19(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig19", matmul_figs::fig19(scale, seed))?;
    let model = series("fig19", &f, "MP-BPRAM (blocks)")?;
    let intrinsic = series("fig19", &f, "matmul intrinsic (xnet Cannon)")?;
    if model.dominated_by(intrinsic) {
        let n = *model
            .xs()
            .last()
            .ok_or("fig19: the MP-BPRAM series is empty")?;
        let penalty = 1.0 - y_at("fig19", model, n)? / y_at("fig19", intrinsic, n)?;
        Ok(format!(
            "intrinsic wins; penalty {:.0}% (paper: 35%)",
            penalty * 100.0
        ))
    } else {
        Err("fig19: the intrinsic did not dominate".into())
    }
}

fn check_fig20(scale: Scale, seed: u64) -> Result<String, String> {
    let f = fig("fig20", matmul_figs::fig20(scale, seed))?;
    let model = series("fig20", &f, "MP-BPRAM")?;
    let cmssl = series("fig20", &f, "gen_matrix_mult (CMSSL)")?;
    if cmssl.dominated_by(model) {
        let peak = cmssl.ys().into_iter().fold(0.0f64, f64::max);
        Ok(format!(
            "model versions win; CMSSL peaks at {peak:.0} Mflops (paper: <=151)"
        ))
    } else {
        Err("fig20: CMSSL unexpectedly won".into())
    }
}

fn check_sec8(scale: Scale, seed: u64) -> Result<String, String> {
    let Output::Tab(t) = granularity::run(scale, seed) else {
        return Err("sec8: driver returned a figure, expected a table".into());
    };
    let ratio = |m: &str| -> Result<f64, String> {
        let cell = t
            .cell(m, "ratio @16 B")
            .ok_or_else(|| format!("sec8: no 'ratio @16 B' cell for {m}"))?;
        cell.parse()
            .map_err(|e| format!("sec8: unparsable ratio for {m}: {e}"))
    };
    let (mp, c5) = (ratio("MasPar")?, ratio("CM-5")?);
    if (mp - 1.37).abs() < 0.45 && (c5 - 2.1).abs() < 0.7 {
        Ok(format!(
            "16-byte ratios: MasPar {mp:.2} (1.37), CM-5 {c5:.2} (2.1)"
        ))
    } else {
        Err(format!("ratios MasPar {mp:.2} / CM-5 {c5:.2}"))
    }
}

/// All registered claims.
pub fn claims() -> Vec<Claim> {
    vec![
        Claim {
            id: "fig03",
            statement: "MP-BSP predicts the MasPar matmul within ~14%",
            verify: check_fig03,
        },
        Claim {
            id: "fig04",
            statement: "unstaggered sends cost ~21% on the CM-5 (receiver contention)",
            verify: check_fig04,
        },
        Claim {
            id: "fig05",
            statement: "MP-BSP overestimates MasPar bitonic ~2x (cheap router pattern)",
            verify: check_fig05,
        },
        Claim {
            id: "fig06",
            statement: "GCel drift breaks BSP; a barrier every 256 messages restores it",
            verify: check_fig06,
        },
        Claim {
            id: "fig12",
            statement: "unbalanced communication breaks MP-BSP on MasPar APSP; E-BSP is close",
            verify: check_fig12,
        },
        Claim {
            id: "fig14",
            statement: "GCel multinode scatters are up to 9.1x cheaper than h-relations",
            verify: check_fig14,
        },
        Claim {
            id: "fig19",
            statement: "the MasPar matmul intrinsic beats the model-derived codes (~35%)",
            verify: check_fig19,
        },
        Claim {
            id: "fig20",
            statement: "the model-derived codes beat CMSSL gen_matrix_mult (<=151 Mflops)",
            verify: check_fig20,
        },
        Claim {
            id: "sec8",
            statement: "16-byte messages close the bulk gap to 1.37 (MasPar) / 2.1 (CM-5)",
            verify: check_sec8,
        },
    ]
}

/// Runs every claim; returns `(passed, failed)`.
pub fn run_all(
    scale: Scale,
    seed: u64,
    mut report: impl FnMut(&Claim, &Result<String, String>),
) -> (usize, usize) {
    let mut pass = 0;
    let mut fail = 0;
    for claim in claims() {
        let result = (claim.verify)(scale, seed);
        if result.is_ok() {
            pass += 1;
        } else {
            fail += 1;
        }
        report(&claim, &result);
    }
    (pass, fail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes_at_quick_scale() {
        let (pass, fail) = run_all(Scale::Quick, 1996, |claim, result| {
            if let Err(e) = result {
                eprintln!("claim {} failed: {e}", claim.id);
            }
        });
        assert_eq!(fail, 0, "{pass} passed, {fail} failed");
    }

    #[test]
    fn claims_have_unique_ids() {
        let mut ids: Vec<&str> = claims().iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn lookup_failures_name_the_figure_instead_of_panicking() {
        let f = Figure::new("fig99", "empty", "x", "y");
        let err = series("fig99", &f, "Nope").unwrap_err();
        assert!(err.contains("fig99") && err.contains("Nope"), "{err}");
        let s = Series::new("S");
        let err = y_at("fig42", &s, 7.0).unwrap_err();
        assert!(err.contains("fig42") && err.contains("7"), "{err}");
    }
}
