//! Multi-core sweep driver: deterministic fan-out of independent grid
//! points.
//!
//! Every harness in the workspace — the `reproduce` experiments, the
//! `pcm-audit` schedule verifier, the `pcm-sym` crossover replays and the
//! `bench-report` scaling runs — walks a grid of independent work units
//! (one per algorithm × machine × size point). [`map_ordered`] fans those
//! units across the rayon shim's worker pool and returns the results in
//! input order, so report files stay byte-identical to the sequential
//! sweep no matter the pool width.
//!
//! Work units frequently construct [`pcm_sim`] machines internally, and
//! those machines parallelize their own supersteps. The shim makes this
//! nesting safe by running nested parallel calls inline on the worker
//! that issued them (see `rayon::in_pool_worker`): a sweep-level fan-out
//! gets the cores, and the machines inside each unit degrade to
//! sequential supersteps — the right trade for grids of many small
//! simulations. Determinism is unaffected: the simulator is bit-identical
//! across execution strategies (pinned by `tests/pooling.rs` and
//! `tests/exchange_shard.rs`), so results only depend on the unit's
//! inputs, never on which thread ran it.

/// Applies `f` to every item on the worker pool and collects the results
/// in input order. `f(i, item)` receives the item's input index.
///
/// Falls back to a plain sequential loop when the pool has a single
/// thread, when called from inside a pool worker (nested sweeps), or for
/// trivially small inputs — same semantics, no dispatch overhead.
pub fn map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut slots: Vec<(Option<T>, Option<R>)> =
        items.into_iter().map(|t| (Some(t), None)).collect();
    rayon::scoped_join(&mut slots, |i, slot| {
        let item = slot.0.take().expect("each slot visited exactly once");
        slot.1 = Some(f(i, item));
    });
    slots
        .into_iter()
        .map(|(_, r)| r.expect("scoped_join visits every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let out = map_ordered((0..100usize).collect(), |i, x| {
            assert_eq!(i, x, "index matches the item's input position");
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map_ordered(vec!["a", "b", "c"], |_, s| {
            calls.fetch_add(1, Ordering::SeqCst);
            s.to_uppercase()
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(out, vec!["A", "B", "C"]);
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = map_ordered(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(map_ordered(vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn nested_sweeps_do_not_deadlock() {
        let out = map_ordered((0..8usize).collect(), |_, x| {
            map_ordered((0..4usize).collect(), move |_, y| x * 10 + y)
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[1], 10 + 11 + 12 + 13);
    }
}
