//! CLI that regenerates the paper's tables and figures.
//!
//! Usage:
//!   reproduce list
//!   reproduce all [--quick] [--seed N] [--out DIR]
//!   reproduce fig04 table1 ... [--quick] [--seed N] [--out DIR]

use std::io::Write as _;
use std::time::Instant;

use pcm_experiments::{registry, Output, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }

    let mut scale = Scale::Full;
    let mut seed = 1996u64;
    let mut out_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => out_dir = Some(it.next().expect("--out needs a directory")),
            "list" => {
                for e in registry() {
                    println!("{:8} {}", e.id, e.title);
                }
                return;
            }
            "check" => {
                let (pass, fail) =
                    pcm_experiments::check::run_all(scale, seed, |claim, result| match result {
                        Ok(detail) => {
                            println!("PASS {:6} {} — {}", claim.id, claim.statement, detail)
                        }
                        Err(err) => println!("FAIL {:6} {} — {}", claim.id, claim.statement, err),
                    });
                println!();
                println!("{pass} claims passed, {fail} failed");
                std::process::exit(if fail == 0 { 0 } else { 1 });
            }
            "all" => targets.extend(registry().iter().map(|e| e.id.to_string())),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
        std::process::exit(2);
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("cannot create output directory");
    }

    for id in targets {
        let Some(exp) = pcm_experiments::find(&id) else {
            eprintln!("unknown experiment `{id}` — try `reproduce list`");
            std::process::exit(2);
        };
        eprintln!("== {} — {} ==", exp.id, exp.title);
        let start = Instant::now();
        let output: Output = (exp.run)(scale, seed);
        let text = output.render();
        eprintln!("   ({:.1}s wall clock)", start.elapsed().as_secs_f64());
        println!("{text}");
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.txt");
            let mut f = std::fs::File::create(&path).expect("cannot write result file");
            f.write_all(text.as_bytes()).unwrap();
        }
    }
}

fn usage() {
    eprintln!(
        "usage: reproduce <list | check | all | id...> [--quick] [--seed N] [--out DIR]\n\
         ids: table1, fig01..fig20, sec8, modelfit"
    );
}
