//! Trace accounting: replay the algorithms' superstep traces under every
//! model and report which model best explains each machine.
//!
//! This generalizes the paper's evaluation method — instead of deriving a
//! closed form per algorithm, the accountant (`pcm_models::account`)
//! consumes the traces the simulator recorded and charges each model's
//! rules mechanically. The result should echo the paper's Section 8: the
//! MP-BPRAM explains block-transfer programs, MP-BSP/BSP explain word
//! programs on their machines, and E-BSP wins wherever communication is
//! unbalanced.

use pcm_algos::run::step_facts;
use pcm_algos::sort::bitonic::{self, ExchangeMode};
use pcm_core::Table;
use pcm_machines::Platform;
use pcm_models::account_run;

use crate::report::{Output, Scale};

/// Runs bitonic sort in word and block modes on every machine, accounts
/// the traces under all four models, and reports each model's relative
/// error against the simulated measurement.
pub fn run(scale: Scale, seed: u64) -> Output {
    let m = match scale {
        Scale::Full => 1024,
        Scale::Quick => 256,
    };
    let mut t = Table::new(
        "Model fit",
        format!(
            "Bitonic sort ({m} keys/processor) traces replayed under each model: \
             relative error of the model's charge vs the simulated time \
             (negative = underestimate)"
        ),
        vec![
            "Workload".into(),
            "BSP".into(),
            "MP-BSP".into(),
            "MP-BPRAM".into(),
            "E-BSP".into(),
            "best".into(),
        ],
    );

    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let params = plat.model_params();
        for (label, mode) in [
            ("words", ExchangeMode::Words),
            ("blocks", ExchangeMode::Block),
        ] {
            // Re-run with tracing through the library API.
            let r = bitonic::run(&plat, m, mode, seed);
            assert!(r.verified);
            // The RunResult does not carry traces; reconstruct them by
            // running the machine again at the algorithm level would be
            // wasteful — instead the breakdown already separates compute,
            // and the accountant needs per-step facts, which we collect by
            // re-running via the traced path below.
            let facts = traced_facts(&plat, m, mode, seed);
            let acc = account_run(&params, &facts);
            let measured = r.time;
            let err = |t: pcm_core::SimTime| {
                format!("{:+.0}%", 100.0 * ((t + acc.compute) / measured - 1.0))
            };
            let (best, _) = acc.best_fit(measured);
            t.push_row(vec![
                format!("{} {label}", plat.name()),
                err(acc.bsp),
                err(acc.mp_bsp),
                err(acc.bpram),
                err(acc.ebsp),
                best.to_string(),
            ]);
        }
    }
    Output::Tab(t)
}

/// Runs the bitonic phases directly on a machine to harvest the traces.
fn traced_facts(
    plat: &Platform,
    m: usize,
    mode: ExchangeMode,
    seed: u64,
) -> Vec<pcm_models::StepFacts> {
    use pcm_algos::sort::bitonic::{merge_phases, BitonicList, SortState};
    use pcm_algos::sort::radix::radix_sort;

    let p = plat.p();
    let mut rng = pcm_core::rng::seeded(seed);
    let all_keys = pcm_core::rng::random_keys(p * m, &mut rng);
    let states: Vec<SortState> = (0..p)
        .map(|i| SortState {
            keys: all_keys[i * m..(i + 1) * m].to_vec(),
            stash: Vec::new(),
        })
        .collect();
    let mut machine = plat.machine(states, seed);
    machine.superstep(|ctx| {
        radix_sort(ctx.state.list_mut());
        ctx.charge_radix_sort(m, 32, 8);
    });
    merge_phases(&mut machine, mode);
    step_facts(machine.traces())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_picks_sensible_models() {
        let Output::Tab(t) = run(Scale::Quick, 4) else {
            panic!()
        };
        assert_eq!(t.rows.len(), 6, "3 machines x 2 workloads");
        // Block workloads are explained by the MP-BPRAM on every machine.
        for machine in ["MasPar", "GCel", "CM-5"] {
            let key = format!("{machine} blocks");
            let best = t.cell(&key, "best").unwrap();
            assert_eq!(best, "MP-BPRAM", "{key} best-fit = {best}");
        }
        // The GCel word workload follows (MP-)BSP-style charging; the
        // MasPar word workload is *cheaper* than MP-BSP predicts (Fig. 5),
        // so anything but MP-BPRAM may win — assert MP-BSP overestimates.
        let gcel_best = t.cell("GCel words", "best").unwrap();
        assert!(
            gcel_best == "BSP" || gcel_best == "MP-BSP" || gcel_best == "E-BSP",
            "GCel words best-fit = {gcel_best}"
        );
        let maspar_mp = t.cell("MasPar words", "MP-BSP").unwrap();
        assert!(
            maspar_mp.starts_with('+'),
            "MP-BSP should overestimate MasPar bitonic, got {maspar_mp}"
        );
    }
}
