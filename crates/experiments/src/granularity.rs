//! Section 8 conclusions: message granularity.
//!
//! "On these architectures, a satisfactory performance can be obtained by
//! using fixed size short messages, but larger than one computational
//! word ... For example, with 16-byte messages, the difference decreases
//! to 1.37 on the MasPar and to 2.1 on the CM-5."
//!
//! The experiment sorts with bitonic sort under increasing packet sizes
//! and reports the per-key cost relative to the MP-BPRAM (whole-list
//! block) version — the "difference" of the quote.

use pcm_algos::sort::bitonic::{self, ExchangeMode};
use pcm_core::Table;
use pcm_machines::Platform;

use crate::report::{Output, Scale};

/// Per-key time of a bitonic run, in µs.
fn per_key(plat: &Platform, m: usize, mode: ExchangeMode, seed: u64) -> f64 {
    let r = bitonic::run(plat, m, mode, seed);
    assert!(r.verified);
    r.time.as_micros() / m as f64
}

/// Runs the granularity study on the MasPar and the CM-5.
pub fn run(scale: Scale, seed: u64) -> Output {
    let m = match scale {
        Scale::Full => 2048,
        Scale::Quick => 512,
    };
    let mut t = Table::new(
        "Sec. 8",
        format!(
            "Bitonic sort with fixed-size packets, {m} keys/processor: per-key cost \
             relative to the MP-BPRAM block version (paper: 16-byte messages give \
             1.37 on the MasPar, 2.1 on the CM-5)"
        ),
        vec![
            "Architecture".into(),
            "1 word [µs/key]".into(),
            "16 B [µs/key]".into(),
            "64 B [µs/key]".into(),
            "blocks [µs/key]".into(),
            "ratio @16 B".into(),
        ],
    );
    for plat in [Platform::maspar(), Platform::cm5()] {
        let w = plat.word();
        let words = per_key(&plat, m, ExchangeMode::Packets { bytes: w }, seed);
        let p16 = per_key(&plat, m, ExchangeMode::Packets { bytes: 16 }, seed);
        let p64 = per_key(&plat, m, ExchangeMode::Packets { bytes: 64 }, seed);
        let blocks = per_key(&plat, m, ExchangeMode::Block, seed);
        t.push_row(vec![
            plat.name().to_string(),
            format!("{words:.1}"),
            format!("{p16:.1}"),
            format!("{p64:.1}"),
            format!("{blocks:.1}"),
            format!("{:.2}", p16 / blocks),
        ]);
    }
    Output::Tab(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_ratios_match_the_papers_conclusions() {
        let Output::Tab(t) = run(Scale::Quick, 3) else {
            panic!()
        };
        let ratio =
            |machine: &str| -> f64 { t.cell(machine, "ratio @16 B").unwrap().parse().unwrap() };
        // "with 16-byte messages, the difference decreases to 1.37 on the
        // MasPar and to 2.1 on the CM-5" — the comparison is communication
        // cost; the whole-sort ratio dilutes it slightly with local work.
        let maspar = ratio("MasPar");
        assert!((maspar - 1.37).abs() < 0.45, "MasPar ratio = {maspar}");
        let cm5 = ratio("CM-5");
        assert!((cm5 - 2.1).abs() < 0.7, "CM-5 ratio = {cm5}");
    }

    #[test]
    fn bigger_packets_are_monotonically_cheaper() {
        let plat = Platform::cm5();
        let m = 256;
        let a = per_key(&plat, m, ExchangeMode::Packets { bytes: 8 }, 1);
        let b = per_key(&plat, m, ExchangeMode::Packets { bytes: 32 }, 1);
        let c = per_key(&plat, m, ExchangeMode::Packets { bytes: 128 }, 1);
        assert!(a > b && b > c, "{a} > {b} > {c} expected");
    }
}
