//! Figures 1, 2, 7 and 14 — the machine-characterization plots of
//! Sections 3 and 5.

use pcm_calibrate::{fit_g_mscat, fit_gl, fit_t_unb, microbench};
use pcm_core::{DataPoint, Figure, Series};
use pcm_machines::Platform;

use crate::report::{Output, Scale};

/// Fig. 1: time for routing 1-h relations on the MasPar, with min/max
/// error bars, plus the fitted `g·h + L` line.
pub fn fig01(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let (trials, hs): (usize, Vec<usize>) = match scale {
        Scale::Full => (100, vec![1, 2, 4, 8, 12, 16, 24, 32, 48, 64]),
        Scale::Quick => (5, vec![1, 4, 16, 64]),
    };
    let mut measured = Series::new("Measured");
    for &h in &hs {
        let s = microbench::one_h_relation(&plat, h, trials, seed);
        measured.push(DataPoint::with_bounds(h as f64, s.mean, s.min, s.max));
    }
    let fit = fit_gl(&plat, trials.min(10), seed);
    let fitted = Series::from_points(
        format!("Fit g·h+L (g={:.1}, L={:.0})", fit.g, fit.l),
        hs.iter().map(|&h| (h as f64, fit.g * h as f64 + fit.l)),
    );
    let paper = Series::from_points(
        "Paper fit (g=32.2, L=1400)",
        hs.iter().map(|&h| (h as f64, 32.2 * h as f64 + 1400.0)),
    );
    Output::Fig(
        Figure::new(
            "Fig. 1",
            "Time required for routing 1-h relations on the MasPar MP-1",
            "h",
            "µs",
        )
        .with(measured)
        .with(fitted)
        .with(paper),
    )
}

/// Fig. 2: time taken by partial permutations as a function of the number
/// of active processors on the MasPar, plus the fitted `T_unb` polynomial.
pub fn fig02(scale: Scale, seed: u64) -> Output {
    let plat = Platform::maspar();
    let (trials, actives): (usize, Vec<usize>) = match scale {
        Scale::Full => (50, vec![32, 64, 128, 192, 256, 384, 512, 768, 1024]),
        Scale::Quick => (4, vec![32, 128, 512, 1024]),
    };
    let mut measured = Series::new("Measured");
    for &a in &actives {
        let s = microbench::partial_permutation(&plat, a, trials, seed);
        measured.push(DataPoint::with_bounds(a as f64, s.mean, s.min, s.max));
    }
    let fit = fit_t_unb(&plat, trials.min(10), seed);
    let fitted = Series::from_points(
        format!("Fit {:.2}·P' + {:.1}·sqrt(P') + {:.0}", fit.a, fit.b, fit.c),
        actives.iter().map(|&a| (a as f64, fit.eval(a as f64))),
    );
    let paper = Series::from_points(
        "Paper fit 0.84·P' + 11.8·sqrt(P') + 73.3",
        actives
            .iter()
            .map(|&a| (a as f64, 0.84 * a as f64 + 11.8 * (a as f64).sqrt() + 73.3)),
    );
    Output::Fig(
        Figure::new(
            "Fig. 2",
            "Partial permutation time vs number of active PEs on the MasPar",
            "active PEs",
            "µs",
        )
        .with(measured)
        .with(fitted)
        .with(paper),
    )
}

/// Fig. 7: h-h permutations (with and without a barrier every 256
/// messages) vs randomly generated h-relations on the GCel.
pub fn fig07(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let hs: Vec<usize> = match scale {
        Scale::Full => vec![50, 100, 200, 300, 400, 600, 800, 1200, 1600, 2000],
        Scale::Quick => vec![100, 400, 1600],
    };
    let trials = match scale {
        Scale::Full => 5,
        Scale::Quick => 2,
    };
    let mut hh = Series::new("h-h permutations");
    let mut hh_sync = Series::new("h-h permutations, barrier every 256");
    let mut hrel = Series::new("Random h-relations");
    for &h in &hs {
        hh.push(DataPoint::new(
            h as f64,
            microbench::hh_permutation(&plat, h, None, seed).as_millis(),
        ));
        hh_sync.push(DataPoint::new(
            h as f64,
            microbench::hh_permutation(&plat, h, Some(256), seed).as_millis(),
        ));
        let s = microbench::full_h_relation(&plat, h.min(64), trials, seed);
        // Full h-relations are linear; extrapolate the measured slope so
        // the series covers the same h range the paper plots.
        let per_h = (s.mean - 5100.0) / h.min(64) as f64;
        hrel.push(DataPoint::new(h as f64, (per_h * h as f64 + 5100.0) / 1e3));
    }
    Output::Fig(
        Figure::new(
            "Fig. 7",
            "h-h permutations vs random h-relations on the GCel (drift beyond h ≈ 300)",
            "h",
            "ms",
        )
        .with(hh)
        .with(hh_sync)
        .with(hrel),
    )
}

/// Fig. 14: total times of full h-relations vs multinode scatters on the
/// GCel, with the fitted `g_mscat`.
pub fn fig14(scale: Scale, seed: u64) -> Output {
    let plat = Platform::gcel();
    let (trials, hs): (usize, Vec<usize>) = match scale {
        Scale::Full => (10, vec![7, 14, 28, 42, 56]),
        Scale::Quick => (2, vec![7, 28, 56]),
    };
    let mut full = Series::new("Full h-relations");
    let mut scatter = Series::new("Multinode scatters");
    for &h in &hs {
        full.push(DataPoint::new(
            h as f64,
            microbench::full_h_relation(&plat, h, trials, seed).mean / 1e3,
        ));
        scatter.push(DataPoint::new(
            h as f64,
            microbench::multinode_scatter(&plat, h, trials, seed).mean / 1e3,
        ));
    }
    let fit = fit_g_mscat(&plat, trials, seed);
    let fitted = Series::from_points(
        format!("Fit g_mscat·h+L (g_mscat={:.0})", fit.g),
        hs.iter()
            .map(|&h| (h as f64, (fit.g * h as f64 + fit.l) / 1e3)),
    );
    Output::Fig(
        Figure::new(
            "Fig. 14",
            "Full h-relations vs multinode scatter operations on the GCel",
            "h",
            "ms",
        )
        .with(full)
        .with(scatter)
        .with(fitted),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_quick_has_error_bars_and_reasonable_fit() {
        let Output::Fig(f) = fig01(Scale::Quick, 7) else {
            panic!()
        };
        let measured = f.series_named("Measured").unwrap();
        assert!(measured.points.iter().all(|p| p.y_min.is_some()));
        // Measured h=1 lands near the paper's ~1300 µs.
        let y1 = measured.y_at(1.0).unwrap();
        assert!((y1 - 1300.0).abs() < 250.0, "h=1: {y1}");
    }

    #[test]
    fn fig02_partial_permutations_are_cheap() {
        let Output::Fig(f) = fig02(Scale::Quick, 8) else {
            panic!()
        };
        let m = f.series_named("Measured").unwrap();
        let at32 = m.y_at(32.0).unwrap();
        let at1024 = m.y_at(1024.0).unwrap();
        assert!(at32 < 0.3 * at1024, "32 PEs {at32} vs full {at1024}");
    }

    #[test]
    fn fig07_shows_the_drift_knee() {
        let Output::Fig(f) = fig07(Scale::Quick, 9) else {
            panic!()
        };
        let hh = f.series_named("h-h permutations").unwrap();
        let sync = f
            .series_named("h-h permutations, barrier every 256")
            .unwrap();
        // At h = 1600 the unsynced version has degraded well beyond the
        // synchronized one.
        assert!(hh.y_at(1600.0).unwrap() > 1.4 * sync.y_at(1600.0).unwrap());
        // At h = 100 they are close.
        let a = hh.y_at(100.0).unwrap();
        let b = sync.y_at(100.0).unwrap();
        assert!((a - b).abs() / b < 0.3, "{a} vs {b}");
    }

    #[test]
    fn fig14_scatter_is_much_cheaper() {
        let Output::Fig(f) = fig14(Scale::Quick, 10) else {
            panic!()
        };
        let full = f.series_named("Full h-relations").unwrap();
        let scat = f.series_named("Multinode scatters").unwrap();
        assert!(scat.y_at(56.0).unwrap() * 5.0 < full.y_at(56.0).unwrap());
    }
}
