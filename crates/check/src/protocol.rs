//! Layer 1: the runtime protocol checker.
//!
//! A [`ProtocolChecker`] implements `pcm_sim::Validator` and inspects
//! every superstep the machine executes. [`check_protocol`] installs one
//! for the duration of a closure (through `pcm_sim::with_validator`) and
//! returns every violation observed, so a test can run a whole algorithm
//! and assert the list is empty — or deliberately provoke one rule and
//! assert exactly that rule fired.

use std::cell::RefCell;
use std::rc::Rc;

use pcm_sim::{with_validator, BlockRound, RunReport, StepReport, Validator};

use crate::discipline::Discipline;
use crate::rules::{RuleId, Violation};

/// Observes a machine's supersteps and records protocol violations.
pub struct ProtocolChecker {
    discipline: Discipline,
    sink: Rc<RefCell<Vec<Violation>>>,
}

impl ProtocolChecker {
    /// A checker appending to a shared violation list.
    pub fn new(discipline: Discipline, sink: Rc<RefCell<Vec<Violation>>>) -> Self {
        ProtocolChecker { discipline, sink }
    }

    fn push(&self, rule: RuleId, step: usize, pid: Option<usize>, detail: String) {
        self.sink.borrow_mut().push(Violation {
            rule,
            step,
            pid,
            detail,
        });
    }

    fn check_block_rounds(&self, step: usize, kind: &str, rounds: &[BlockRound]) {
        for (round, r) in rounds.iter().enumerate() {
            let fan_in = r.max_in_degree();
            if fan_in > 1 {
                self.push(
                    RuleId::BlockFanIn,
                    step,
                    hottest_dst(r.sends.iter().map(|&(_, dst, _)| dst)),
                    format!(
                        "{kind} round {round}: {fan_in} blocks converge on one \
                         destination under single-port discipline '{}'",
                        self.discipline.name
                    ),
                );
            }
        }
    }
}

impl Validator for ProtocolChecker {
    fn check_step(&mut self, report: &StepReport<'_>) {
        let step = report.step;
        let d = self.discipline;

        // R01: messages sent past the end of the machine.
        for (pid, oobs) in report.oob_sends.iter().enumerate() {
            for &dst in oobs {
                self.push(
                    RuleId::DstRange,
                    step,
                    Some(pid),
                    format!("destination {dst} out of range for {} processors", report.p),
                );
            }
        }

        // R02: delivered but never read before this barrier.
        for pid in 0..report.p {
            if report.inbox_count[pid] > 0 && !report.inbox_read[pid] {
                self.push(
                    RuleId::UnreadInbox,
                    step,
                    Some(pid),
                    format!(
                        "{} message(s) delivered at the previous barrier were \
                         never read this superstep",
                        report.inbox_count[pid]
                    ),
                );
            }
        }

        // R03: message kinds the discipline does not admit.
        let (words, blocks, xnets) = report.pattern.kind_counts();
        for (count, allowed, kind) in [
            (words, d.allow_words, "word"),
            (blocks, d.allow_blocks, "block"),
            (xnets, d.allow_xnet, "xnet"),
        ] {
            if count > 0 && !allowed {
                self.push(
                    RuleId::KindDiscipline,
                    step,
                    None,
                    format!(
                        "{count} {kind} message(s) sent under discipline '{}' \
                         which forbids that kind",
                        d.name
                    ),
                );
            }
        }

        // R04: word rounds must be permutations under MP-BSP.
        if d.forbid_concurrent_writes {
            for (i, seg) in report.pattern.word_segments().iter().enumerate() {
                let fan_in = seg.max_in_degree();
                if fan_in > 1 {
                    self.push(
                        RuleId::ConcurrentWrite,
                        step,
                        hottest_dst(seg.sends.iter().map(|&(_, dst)| dst)),
                        format!(
                            "word segment {i} ({} round(s)): {fan_in} senders \
                             target one destination per round under discipline '{}'",
                            seg.rounds, d.name
                        ),
                    );
                }
            }
        }

        // R05: NaN / infinite / negative charges.
        for pid in 0..report.p {
            if !report.charge_ok[pid] {
                self.push(
                    RuleId::BadCharge,
                    step,
                    Some(pid),
                    "a charge* call passed a NaN, infinite or negative amount".into(),
                );
            }
        }

        // R06: single-port block semantics.
        if d.single_port_blocks {
            self.check_block_rounds(step, "block", &report.pattern.block_rounds());
            self.check_block_rounds(step, "xnet", &report.pattern.xnet_rounds());
        }

        // R07: the priced times themselves must be finite.
        if !report.compute.as_micros().is_finite() {
            self.push(
                RuleId::NonfiniteTime,
                step,
                None,
                format!("compute time is {}", report.compute.as_micros()),
            );
        }
        if !report.comm.as_micros().is_finite() {
            self.push(
                RuleId::NonfiniteTime,
                step,
                None,
                format!("communication time is {}", report.comm.as_micros()),
            );
        }
    }

    fn finish(&mut self, report: &RunReport<'_>) {
        // R02 at end of run: the machine was dropped with unread messages.
        for (pid, &pending) in report.pending_inbox.iter().enumerate() {
            if pending > 0 {
                self.push(
                    RuleId::UnreadInbox,
                    report.supersteps,
                    Some(pid),
                    format!("{pending} message(s) still in the inbox when the machine was dropped"),
                );
            }
        }
    }
}

/// The destination receiving the most items — named in R04/R06 details.
fn hottest_dst(dsts: impl Iterator<Item = usize>) -> Option<usize> {
    let mut counts = std::collections::HashMap::new();
    for dst in dsts {
        *counts.entry(dst).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(dst, n)| (n, std::cmp::Reverse(dst)))
        .map(|(dst, _)| dst)
}

/// Runs `body` with a [`ProtocolChecker`] watching every machine it
/// creates, and returns the body's result plus all recorded violations.
///
/// Violations are reported in superstep order per machine; when `body`
/// creates several machines their reports are interleaved in creation
/// order.
pub fn check_protocol<R>(discipline: Discipline, body: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    let sink: Rc<RefCell<Vec<Violation>>> = Rc::default();
    let handle = sink.clone();
    let result = with_validator(
        move |_p| Box::new(ProtocolChecker::new(discipline, handle.clone())) as Box<dyn Validator>,
        body,
    );
    let violations = sink.borrow().clone();
    (result, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_sim::{IdealNetwork, Machine, UniformCompute};
    use std::sync::Arc;

    fn machine(p: usize) -> Machine<u32> {
        Machine::new(
            Box::new(IdealNetwork),
            Arc::new(UniformCompute::test_model()),
            vec![0u32; p],
            7,
        )
    }

    fn rules(violations: &[Violation]) -> Vec<RuleId> {
        let mut rs: Vec<RuleId> = violations.iter().map(|v| v.rule).collect();
        rs.dedup();
        rs
    }

    /// Drains the inbox so a run ends clean w.r.t. R02.
    fn drain(m: &mut Machine<u32>) {
        m.superstep(|ctx| {
            let _ = ctx.msgs();
        });
    }

    // ---- R01 ------------------------------------------------------------

    #[test]
    fn r01_fires_on_out_of_range_destination() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() == 1 {
                    ctx.send_word_u32(9, 5);
                }
            });
        });
        assert_eq!(rules(&v), vec![RuleId::DstRange], "{v:?}");
        assert_eq!(v[0].pid, Some(1));
        assert!(v[0].detail.contains('9'), "{}", v[0].detail);
    }

    #[test]
    fn r01_clean_on_in_range_sends() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(4);
            m.superstep(|ctx| ctx.send_word_u32((ctx.pid() + 1) % 4, 5));
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R02 ------------------------------------------------------------

    #[test]
    fn r02_fires_when_a_superstep_ignores_its_inbox() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 1);
                }
            });
            m.superstep(|_ctx| {}); // proc 1 never reads its delivery
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::UnreadInbox], "{v:?}");
        assert_eq!((v[0].step, v[0].pid), (1, Some(1)));
    }

    #[test]
    fn r02_fires_when_the_machine_drops_with_pending_messages() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 1);
                }
            });
        });
        assert_eq!(rules(&v), vec![RuleId::UnreadInbox], "{v:?}");
        assert_eq!(v[0].step, 1, "reported at the would-be next superstep");
        assert!(v[0].detail.contains("dropped"));
    }

    #[test]
    fn r02_clean_when_every_delivery_is_read() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 1);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R03 ------------------------------------------------------------

    #[test]
    fn r03_fires_on_a_word_message_under_bpram() {
        let ((), v) = check_protocol(Discipline::bpram(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_word_u32(1, 1);
                }
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::KindDiscipline], "{v:?}");
        assert!(v[0].detail.contains("word"), "{}", v[0].detail);
    }

    #[test]
    fn r03_fires_on_a_block_message_under_mp_bsp() {
        let ((), v) = check_protocol(Discipline::mp_bsp(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_block_u32(1, &[1, 2, 3]);
                }
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::KindDiscipline], "{v:?}");
        assert!(v[0].detail.contains("block"), "{}", v[0].detail);
    }

    #[test]
    fn r03_clean_when_kinds_match_the_discipline() {
        let ((), v) = check_protocol(Discipline::bpram(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.send_block_u32(1, &[1, 2, 3]);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R04 ------------------------------------------------------------

    #[test]
    fn r04_fires_on_unstaggered_senders_under_mp_bsp() {
        let ((), v) = check_protocol(Discipline::mp_bsp(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                // Procs 0 and 1 both hit dst 2 first: in-degree 2 rounds.
                if ctx.pid() < 2 {
                    ctx.send_words_u32(2, &[1, 2, 3]);
                    ctx.send_words_u32(3, &[1, 2, 3]);
                }
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::ConcurrentWrite], "{v:?}");
        assert_eq!(v[0].pid, Some(2), "names the contended destination");
    }

    #[test]
    fn r04_clean_on_a_staggered_schedule() {
        let ((), v) = check_protocol(Discipline::mp_bsp(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                // Same h-relation, opposite send orders: permutation rounds.
                if ctx.pid() == 0 {
                    ctx.send_words_u32(2, &[1, 2, 3]);
                    ctx.send_words_u32(3, &[1, 2, 3]);
                } else if ctx.pid() == 1 {
                    ctx.send_words_u32(3, &[1, 2, 3]);
                    ctx.send_words_u32(2, &[1, 2, 3]);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r04_not_enforced_under_plain_bsp() {
        let ((), v) = check_protocol(Discipline::bsp_words(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() < 2 {
                    ctx.send_words_u32(2, &[1, 2, 3]);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "contention is priced, not flagged: {v:?}");
    }

    // ---- R05 ------------------------------------------------------------

    #[test]
    fn r05_fires_on_nan_and_negative_charges() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                if ctx.pid() == 0 {
                    ctx.charge(f64::NAN);
                } else {
                    ctx.charge(-1.0);
                }
            });
        });
        assert_eq!(rules(&v), vec![RuleId::BadCharge], "{v:?}");
        assert_eq!(v.len(), 2, "both processors flagged: {v:?}");
    }

    #[test]
    fn r05_clean_on_finite_nonnegative_charges() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                ctx.charge(0.0);
                ctx.charge_ops(100);
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R06 ------------------------------------------------------------

    #[test]
    fn r06_fires_on_two_blocks_converging_in_one_round() {
        let ((), v) = check_protocol(Discipline::bpram(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                // First block of procs 0 and 1 both target proc 2.
                if ctx.pid() < 2 {
                    ctx.send_block_u32(2, &[1, 2, 3, 4]);
                }
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::BlockFanIn], "{v:?}");
        assert_eq!(v[0].pid, Some(2));
    }

    #[test]
    fn r06_clean_on_staggered_single_port_blocks() {
        let ((), v) = check_protocol(Discipline::bpram(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                // Each proc's r-th block goes to pid + r + 1: permutations.
                let p = ctx.nprocs();
                let pid = ctx.pid();
                for r in 1..p {
                    ctx.send_block_u32((pid + r) % p, &[1, 2]);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r06_not_enforced_under_relaxed_blocks() {
        let ((), v) = check_protocol(Discipline::blocks_relaxed(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() < 2 {
                    ctx.send_block_u32(2, &[1, 2, 3, 4]);
                }
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R07 ------------------------------------------------------------

    #[test]
    fn r07_fires_when_charges_overflow_to_infinity() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| {
                // Each charge is finite; their sum is not. R05 (per-proc
                // charge bookkeeping) and R07 (priced step time) both fire.
                ctx.charge(f64::MAX);
                ctx.charge(f64::MAX);
            });
        });
        let rs = rules(&v);
        assert!(rs.contains(&RuleId::NonfiniteTime), "{v:?}");
        assert!(rs.contains(&RuleId::BadCharge), "{v:?}");
    }

    #[test]
    fn r07_clean_on_ordinary_steps() {
        let ((), v) = check_protocol(Discipline::any(), || {
            let mut m = machine(2);
            m.superstep(|ctx| ctx.charge(1e6));
        });
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- plumbing --------------------------------------------------------

    #[test]
    fn hottest_dst_prefers_the_most_loaded_then_lowest_pid() {
        assert_eq!(hottest_dst([2, 2, 3].into_iter()), Some(2));
        assert_eq!(hottest_dst([3, 2].into_iter()), Some(2), "tie -> lowest");
        assert_eq!(hottest_dst(std::iter::empty()), None);
    }

    #[test]
    fn xnet_traffic_obeys_r03_and_r06() {
        // Allowed and permutation-shaped under xnet_grid...
        let ((), v) = check_protocol(Discipline::xnet_grid(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                let p = ctx.nprocs();
                ctx.send_xnet_u32((ctx.pid() + 1) % p, &[1, 2]);
            });
            drain(&mut m);
        });
        assert!(v.is_empty(), "{v:?}");
        // ...flagged as a kind violation under mp_bsp...
        let ((), v) = check_protocol(Discipline::mp_bsp(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                let p = ctx.nprocs();
                ctx.send_xnet_u32((ctx.pid() + 1) % p, &[1, 2]);
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::KindDiscipline], "{v:?}");
        // ...and as fan-in when two xnet blocks converge.
        let ((), v) = check_protocol(Discipline::xnet_grid(), || {
            let mut m = machine(4);
            m.superstep(|ctx| {
                if ctx.pid() < 2 {
                    ctx.send_xnet_u32(2, &[1]);
                }
            });
            drain(&mut m);
        });
        assert_eq!(rules(&v), vec![RuleId::BlockFanIn], "{v:?}");
    }
}
