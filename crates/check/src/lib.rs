//! # pcm-check — sanitizer for pcm runs
//!
//! Three layers of checking for the simulator and the algorithm suite:
//!
//! 1. **Runtime protocol checker** ([`protocol`]): a `pcm_sim::Validator`
//!    that watches every superstep and flags violations of the active
//!    model's message [`Discipline`] — out-of-range destinations (R01),
//!    unread deliveries (R02), disallowed message kinds (R03), concurrent
//!    writes under MP-BSP (R04), invalid charges (R05), block fan-in under
//!    the single-port MP-BPRAM (R06) and non-finite priced times (R07).
//! 2. **Model-conformance lint** ([`conformance`]): diffs a run's recorded
//!    `SuperstepTrace` stream against the `CostContract` its predictor in
//!    `pcm-models` declares — superstep count (C01), per-step h-relation
//!    bound (C02) and admissible message kinds (C03).
//! 3. **Determinism auditor** ([`determinism`]): runs an algorithm twice
//!    with the same seed — rayon on, then forced sequential — and compares
//!    state digests (D01) and trace digests (D02).
//!
//! Every violation carries a stable [`RuleId`], the superstep index and,
//! where one can be named, the processor involved. `tests/sanitizer.rs` at
//! the workspace root sweeps every algorithm x machine x (n, p) point
//! through all three layers.
//!
//! A fourth layer lives in its own crate: the **happens-before race &
//! staleness analyzer** (`pcm-race`) consumes the same validator hook plus
//! the simulator's shadow-memory events and reports W01–W04 findings
//! through this crate's [`RuleId`]/[`Violation`] plumbing.

pub mod conformance;
pub mod determinism;
pub mod discipline;
pub mod protocol;
pub mod rules;

pub use conformance::{breach_to_violation, check_conformance, collect_traces};
pub use determinism::{audit_determinism, digest_traces, Digest};
pub use discipline::Discipline;
pub use protocol::{check_protocol, ProtocolChecker};
pub use rules::{RuleId, Severity, Violation};

/// Renders a violation list for test failure messages: one per line.
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_joins_one_violation_per_line() {
        let vs = vec![
            Violation {
                rule: RuleId::DstRange,
                step: 0,
                pid: Some(1),
                detail: "a".into(),
            },
            Violation {
                rule: RuleId::BadCharge,
                step: 1,
                pid: None,
                detail: "b".into(),
            },
        ];
        let s = render(&vs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("R01-dst-range") && s.contains("R05-bad-charge"));
    }
}
