//! Rule identifiers and the violation record.
//!
//! Every check the sanitizer performs has a stable, human-readable rule
//! id. The ids are grouped by layer: `R` rules come from the runtime
//! protocol checker, `C` rules from the model-conformance lint, and `D`
//! rules from the determinism auditor.

/// Stable identifier of one sanitizer rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// A message was sent to a destination `>= P`.
    DstRange,
    /// Messages were delivered to a processor and never read before the
    /// next barrier (or before the machine was dropped).
    UnreadInbox,
    /// A superstep used a message kind the active discipline forbids.
    KindDiscipline,
    /// A word round had two senders targeting one destination under a
    /// discipline that demands permutation rounds (MP-BSP).
    ConcurrentWrite,
    /// A `charge*` call passed a NaN, infinite or negative amount.
    BadCharge,
    /// A block round had two blocks converging on one destination under
    /// the single-port (MP-BPRAM) discipline.
    BlockFanIn,
    /// A superstep's compute or communication time was not finite.
    NonfiniteTime,
    /// The run's superstep count fell outside its predictor's contract.
    ContractSupersteps,
    /// A superstep exceeded its predictor's h-relation bound.
    ContractHRelation,
    /// A superstep used a message kind its predictor does not price.
    ContractKind,
    /// The rayon-on and sequential runs produced different results.
    StateDigest,
    /// The rayon-on and sequential runs produced different traces.
    TraceDigest,
}

impl RuleId {
    /// The stable textual id, e.g. `"R04-concurrent-write"`.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::DstRange => "R01-dst-range",
            RuleId::UnreadInbox => "R02-unread-inbox",
            RuleId::KindDiscipline => "R03-kind-discipline",
            RuleId::ConcurrentWrite => "R04-concurrent-write",
            RuleId::BadCharge => "R05-bad-charge",
            RuleId::BlockFanIn => "R06-block-fanin",
            RuleId::NonfiniteTime => "R07-nonfinite-time",
            RuleId::ContractSupersteps => "C01-contract-supersteps",
            RuleId::ContractHRelation => "C02-contract-h-relation",
            RuleId::ContractKind => "C03-contract-kind",
            RuleId::StateDigest => "D01-state-digest",
            RuleId::TraceDigest => "D02-trace-digest",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Superstep index (for end-of-run findings, the superstep count).
    pub step: usize,
    /// The processor involved, when one can be named.
    pub pid: Option<usize>,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] superstep {}", self.rule, self.step)?;
        if let Some(pid) = self.pid {
            write!(f, " pid {pid}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        let all = [
            RuleId::DstRange,
            RuleId::UnreadInbox,
            RuleId::KindDiscipline,
            RuleId::ConcurrentWrite,
            RuleId::BadCharge,
            RuleId::BlockFanIn,
            RuleId::NonfiniteTime,
            RuleId::ContractSupersteps,
            RuleId::ContractHRelation,
            RuleId::ContractKind,
            RuleId::StateDigest,
            RuleId::TraceDigest,
        ];
        let mut ids: Vec<&str> = all.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "rule ids must be unique");
        assert!(all.iter().all(|r| {
            let id = r.id();
            id.len() > 4 && id.as_bytes()[3] == b'-'
        }));
    }

    #[test]
    fn violations_render_with_rule_step_and_pid() {
        let v = Violation {
            rule: RuleId::DstRange,
            step: 2,
            pid: Some(5),
            detail: "destination 99 out of range".into(),
        };
        let s = v.to_string();
        assert!(s.contains("R01-dst-range") && s.contains("superstep 2") && s.contains("pid 5"));
    }
}
