//! Rule identifiers and the violation record.
//!
//! Every check the sanitizer performs has a stable, human-readable rule
//! id. The ids are grouped by layer: `R` rules come from the runtime
//! protocol checker, `C` rules from the model-conformance lint, `D` rules
//! from the determinism auditor, and `W` rules from the happens-before
//! race & staleness analyzer (`pcm-race`).

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A correctness violation: the run's result cannot be trusted.
    Error,
    /// A smell worth reporting (wasted communication, fragile patterns)
    /// that does not by itself invalidate the run.
    Warning,
}

/// Stable identifier of one sanitizer rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// A message was sent to a destination `>= P`.
    DstRange,
    /// Messages were delivered to a processor and never read before the
    /// next barrier (or before the machine was dropped).
    UnreadInbox,
    /// A superstep used a message kind the active discipline forbids.
    KindDiscipline,
    /// A word round had two senders targeting one destination under a
    /// discipline that demands permutation rounds (MP-BSP).
    ConcurrentWrite,
    /// A `charge*` call passed a NaN, infinite or negative amount.
    BadCharge,
    /// A block round had two blocks converging on one destination under
    /// the single-port (MP-BPRAM) discipline.
    BlockFanIn,
    /// A superstep's compute or communication time was not finite.
    NonfiniteTime,
    /// The run's superstep count fell outside its predictor's contract.
    ContractSupersteps,
    /// A superstep exceeded its predictor's h-relation bound.
    ContractHRelation,
    /// A superstep used a message kind its predictor does not price.
    ContractKind,
    /// The rayon-on and sequential runs produced different results.
    StateDigest,
    /// The rayon-on and sequential runs produced different traces.
    TraceDigest,
    /// Two different processors wrote into the same `(destination, tag)`
    /// cell within one superstep while the algorithm declared exclusive
    /// writes — the delivered value depends on arrival order.
    WwRace,
    /// A processor consumed data whose producing send had not crossed a
    /// barrier: the matching accessor ran in the producing superstep (or
    /// the data was dropped unread after an empty-handed read attempt).
    StaleRead,
    /// An untagged inbox read observed messages carrying two or more
    /// distinct tags while the algorithm declared a tagged inbox — two
    /// logical streams aliased into one read.
    InboxAlias,
    /// Data was delivered (or a region written) and then overwritten or
    /// dropped without ever being read — wasted communication.
    DeadSend,
}

impl RuleId {
    /// The stable textual id, e.g. `"R04-concurrent-write"`.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::DstRange => "R01-dst-range",
            RuleId::UnreadInbox => "R02-unread-inbox",
            RuleId::KindDiscipline => "R03-kind-discipline",
            RuleId::ConcurrentWrite => "R04-concurrent-write",
            RuleId::BadCharge => "R05-bad-charge",
            RuleId::BlockFanIn => "R06-block-fanin",
            RuleId::NonfiniteTime => "R07-nonfinite-time",
            RuleId::ContractSupersteps => "C01-contract-supersteps",
            RuleId::ContractHRelation => "C02-contract-h-relation",
            RuleId::ContractKind => "C03-contract-kind",
            RuleId::StateDigest => "D01-state-digest",
            RuleId::TraceDigest => "D02-trace-digest",
            RuleId::WwRace => "W01-ww-race",
            RuleId::StaleRead => "W02-stale-read",
            RuleId::InboxAlias => "W03-inbox-alias",
            RuleId::DeadSend => "W04-dead-send",
        }
    }

    /// The severity of a finding under this rule. Everything is an
    /// [`Severity::Error`] except [`RuleId::DeadSend`], which flags wasted
    /// (but harmless) communication.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::DeadSend => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Superstep index (for end-of-run findings, the superstep count).
    pub step: usize,
    /// The processor involved, when one can be named.
    pub pid: Option<usize>,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] superstep {}", self.rule, self.step)?;
        if let Some(pid) = self.pid {
            write!(f, " pid {pid}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        let all = [
            RuleId::DstRange,
            RuleId::UnreadInbox,
            RuleId::KindDiscipline,
            RuleId::ConcurrentWrite,
            RuleId::BadCharge,
            RuleId::BlockFanIn,
            RuleId::NonfiniteTime,
            RuleId::ContractSupersteps,
            RuleId::ContractHRelation,
            RuleId::ContractKind,
            RuleId::StateDigest,
            RuleId::TraceDigest,
            RuleId::WwRace,
            RuleId::StaleRead,
            RuleId::InboxAlias,
            RuleId::DeadSend,
        ];
        let mut ids: Vec<&str> = all.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "rule ids must be unique");
        assert!(all.iter().all(|r| {
            let id = r.id();
            id.len() > 4 && id.as_bytes()[3] == b'-'
        }));
    }

    #[test]
    fn only_dead_send_is_a_warning() {
        assert_eq!(RuleId::DeadSend.severity(), Severity::Warning);
        assert_eq!(RuleId::WwRace.severity(), Severity::Error);
        assert_eq!(RuleId::StaleRead.severity(), Severity::Error);
        assert_eq!(RuleId::InboxAlias.severity(), Severity::Error);
        assert_eq!(RuleId::DstRange.severity(), Severity::Error);
    }

    #[test]
    fn violations_render_with_rule_step_and_pid() {
        let v = Violation {
            rule: RuleId::DstRange,
            step: 2,
            pid: Some(5),
            detail: "destination 99 out of range".into(),
        };
        let s = v.to_string();
        assert!(s.contains("R01-dst-range") && s.contains("superstep 2") && s.contains("pid 5"));
    }
}
