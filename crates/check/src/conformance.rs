//! Layer 2: model-conformance lint.
//!
//! Each predictor in `pcm-models` declares a [`CostContract`] — the
//! superstep count, per-step h-relation bound and admissible message kinds
//! its closed form assumes. This module records the actual
//! [`SuperstepTrace`] stream of a run (through the same validator hook the
//! protocol checker uses) and diffs it against the contract, so a drifted
//! implementation can no longer be silently mispriced by its own formula.

use std::cell::RefCell;
use std::rc::Rc;

use pcm_models::{ContractBreach, CostContract};
use pcm_sim::{with_validator, RunReport, StepReport, SuperstepTrace, Validator};

use crate::rules::{RuleId, Violation};

/// A validator that reconstructs the [`SuperstepTrace`] stream of every
/// machine created in its scope.
struct TraceCollector {
    sink: Rc<RefCell<Vec<SuperstepTrace>>>,
}

impl Validator for TraceCollector {
    fn check_step(&mut self, report: &StepReport<'_>) {
        let pattern = report.pattern;
        let (word_msgs, block_msgs, xnet_msgs) = pattern.kind_counts();
        let block_rounds = pattern.block_rounds();
        self.sink.borrow_mut().push(SuperstepTrace {
            index: report.step,
            compute: report.compute,
            comm: report.comm,
            messages: pattern.total_messages(),
            bytes: pattern.total_bytes(),
            h_send: pattern.h_send(),
            h_recv: pattern.h_recv(),
            active: pattern.active_processors(),
            block_steps: block_rounds.len(),
            block_bytes_sum: block_rounds.iter().map(|r| r.max_bytes()).sum(),
            word_msgs,
            block_msgs,
            xnet_msgs,
        });
    }

    fn finish(&mut self, _report: &RunReport<'_>) {}
}

/// Runs `body` and returns its result plus the superstep traces of every
/// machine it created, concatenated in creation order.
pub fn collect_traces<R>(body: impl FnOnce() -> R) -> (R, Vec<SuperstepTrace>) {
    let sink: Rc<RefCell<Vec<SuperstepTrace>>> = Rc::default();
    let handle = sink.clone();
    let result = with_validator(
        move |_p| {
            Box::new(TraceCollector {
                sink: handle.clone(),
            }) as Box<dyn Validator>
        },
        body,
    );
    let traces = sink.borrow().clone();
    (result, traces)
}

/// Maps a contract breach onto the sanitizer's C-rules.
pub fn breach_to_violation(breach: &ContractBreach) -> Violation {
    match *breach {
        ContractBreach::Supersteps { observed, min, max } => Violation {
            rule: RuleId::ContractSupersteps,
            step: observed,
            pid: None,
            detail: format!("run took {observed} superstep(s), contract allows {min}..={max}"),
        },
        ContractBreach::HRelation {
            step,
            observed,
            bound,
        } => Violation {
            rule: RuleId::ContractHRelation,
            step,
            pid: None,
            detail: format!("h-relation {observed} exceeds the contract bound {bound}"),
        },
        ContractBreach::Kind { step, kind } => Violation {
            rule: RuleId::ContractKind,
            step,
            pid: None,
            detail: format!("{kind} messages are not priced by this predictor"),
        },
    }
}

/// Runs `body` under trace collection and checks the collected stream
/// against `contract` for problem size `n` on `p` processors.
pub fn check_conformance<R>(
    contract: &CostContract,
    n: usize,
    p: usize,
    body: impl FnOnce() -> R,
) -> (R, Vec<Violation>) {
    let (result, traces) = collect_traces(body);
    let violations = contract
        .check(n, p, &traces)
        .iter()
        .map(breach_to_violation)
        .collect();
    (result, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_models::KindMask;
    use pcm_sim::{IdealNetwork, Machine, UniformCompute};
    use std::sync::Arc;

    fn machine(p: usize) -> Machine<u32> {
        Machine::new(
            Box::new(IdealNetwork),
            Arc::new(UniformCompute::test_model()),
            vec![0u32; p],
            3,
        )
    }

    /// A toy contract: exactly 2 supersteps, h <= 4, words only.
    fn toy_contract() -> CostContract {
        CostContract {
            algorithm: "toy",
            supersteps: |_n, _p| (2, 2),
            max_h: |_n, _p| 4,
            allowed_kinds: |_n, _p| KindMask {
                words: true,
                blocks: false,
                xnet: false,
            },
        }
    }

    fn ring_step(m: &mut Machine<u32>, words: usize) {
        m.superstep(move |ctx| {
            let _ = ctx.msgs();
            let p = ctx.nprocs();
            let payload = vec![7u32; words];
            ctx.send_words_u32((ctx.pid() + 1) % p, &payload);
        });
    }

    #[test]
    fn conformant_run_produces_no_violations() {
        let ((), v) = check_conformance(&toy_contract(), 8, 4, || {
            let mut m = machine(4);
            ring_step(&mut m, 2);
            ring_step(&mut m, 2);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn c01_fires_on_a_superstep_count_mismatch() {
        let ((), v) = check_conformance(&toy_contract(), 8, 4, || {
            let mut m = machine(4);
            ring_step(&mut m, 2); // one step instead of two
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::ContractSupersteps);
        assert!(v[0].detail.contains("2..=2"), "{}", v[0].detail);
    }

    #[test]
    fn c02_fires_and_names_the_offending_step() {
        let ((), v) = check_conformance(&toy_contract(), 8, 4, || {
            let mut m = machine(4);
            ring_step(&mut m, 2);
            ring_step(&mut m, 9); // h = 9 > 4 in superstep 1
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].step), (RuleId::ContractHRelation, 1));
        assert!(v[0].detail.contains('9'), "{}", v[0].detail);
    }

    #[test]
    fn c03_fires_on_an_unpriced_message_kind() {
        let ((), v) = check_conformance(&toy_contract(), 8, 4, || {
            let mut m = machine(4);
            ring_step(&mut m, 2);
            m.superstep(|ctx| {
                let _ = ctx.msgs();
                let p = ctx.nprocs();
                ctx.send_block_u32((ctx.pid() + 1) % p, &[1, 2]);
            });
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].step), (RuleId::ContractKind, 1));
        assert!(v[0].detail.contains("block"), "{}", v[0].detail);
    }

    #[test]
    fn collected_traces_match_the_machines_own_accounting() {
        let ((), traces) = collect_traces(|| {
            let mut m = machine(4);
            ring_step(&mut m, 3);
            ring_step(&mut m, 1);
        });
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].index, 0);
        assert_eq!(traces[0].h_send, 3);
        assert_eq!(traces[0].word_msgs, 12, "4 procs x 3 words");
        assert_eq!(traces[1].h_recv, 1);
        assert_eq!(traces[0].active, 4);
        assert_eq!(traces[0].block_msgs + traces[0].xnet_msgs, 0);
    }
}
