//! Layer 3: the determinism auditor.
//!
//! The simulator's results must not depend on whether processor bodies run
//! under rayon or sequentially — per-(superstep, pid) seeded RNGs and
//! ordered outbox collection are supposed to guarantee that. The auditor
//! proves it per algorithm: it runs the same closure three times — once
//! normally, once inside `pcm_sim::with_sequential` (the single-thread
//! reference: sequential processors *and* sequential exchange), and once
//! inside `pcm_sim::with_exchange_shards` with a deliberately awkward
//! shard count — and compares a caller-supplied state digest (rule D01)
//! and the full superstep trace stream (rule D02) across the legs.

use pcm_sim::{with_exchange_shards, with_sequential, SuperstepTrace};

use crate::conformance::collect_traces;
use crate::rules::{RuleId, Violation};

/// FNV-1a 64-bit accumulator for building order-sensitive digests of run
/// results (sorted keys, matrix entries, simulated times, ...).
#[derive(Clone, Copy, Debug)]
pub struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Digest(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64`.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize`.
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Absorbs an `f64` bit pattern (exact, no rounding tolerance: the two
    /// runs execute identical arithmetic, so bits must match).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Absorbs a slice of `u32` keys.
    pub fn push_u32s(&mut self, vals: &[u32]) {
        for &v in vals {
            self.push_bytes(&v.to_le_bytes());
        }
    }

    /// Absorbs a slice of `f64` values.
    pub fn push_f64s(&mut self, vals: &[f64]) {
        for &v in vals {
            self.push_f64(v);
        }
    }

    /// The accumulated digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// Digest of a superstep trace stream: every costed quantity of every
/// superstep, bit-exact.
pub fn digest_traces(traces: &[SuperstepTrace]) -> u64 {
    let mut d = Digest::new();
    for t in traces {
        d.push_usize(t.index);
        d.push_f64(t.compute.as_micros());
        d.push_f64(t.comm.as_micros());
        d.push_usize(t.messages);
        d.push_usize(t.bytes);
        d.push_usize(t.h_send);
        d.push_usize(t.h_recv);
        d.push_usize(t.active);
        d.push_usize(t.block_steps);
        d.push_usize(t.block_bytes_sum);
        d.push_usize(t.word_msgs);
        d.push_usize(t.block_msgs);
        d.push_usize(t.xnet_msgs);
    }
    d.finish()
}

/// Shard count forced on the third auditor leg: odd, rarely divides `p`,
/// so the lane geometry is uneven and shard boundaries cut through the
/// middle of real communication patterns.
const FORCED_SHARD_LEG: usize = 3;

/// Runs `run` three times — rayon-on (default exchange), forced
/// sequential, and forced-sharded exchange — and compares the state
/// digests it returns (D01) and the recorded traces (D02) of each
/// parallel leg against the sequential reference.
///
/// `run` must be self-contained: construct the machine, execute the
/// algorithm with a fixed seed, and fold everything the caller considers
/// "the result" into the returned digest (use [`Digest`]).
pub fn audit_determinism(label: &str, run: impl Fn() -> u64) -> Vec<Violation> {
    let (digest_par, traces_par) = collect_traces(&run);
    let (digest_seq, traces_seq) = with_sequential(|| collect_traces(&run));
    let (digest_shard, traces_shard) =
        with_exchange_shards(FORCED_SHARD_LEG, || collect_traces(&run));

    let mut violations = Vec::new();
    for (leg, digest, traces) in [
        ("parallel", digest_par, &traces_par),
        ("sharded-exchange", digest_shard, &traces_shard),
    ] {
        if digest != digest_seq {
            violations.push(Violation {
                rule: RuleId::StateDigest,
                step: 0,
                pid: None,
                detail: format!(
                    "{label}: {leg} run digest {digest:#018x} != sequential {digest_seq:#018x}"
                ),
            });
        }
        if digest_traces(traces) != digest_traces(&traces_seq) {
            let step = first_divergence(traces, &traces_seq);
            violations.push(Violation {
                rule: RuleId::TraceDigest,
                step,
                pid: None,
                detail: format!(
                    "{label}: {leg} trace stream diverges from sequential at superstep {step} \
                     ({} vs {} supersteps)",
                    traces.len(),
                    traces_seq.len()
                ),
            });
        }
    }
    violations
}

/// Index of the first differing superstep (or the shorter length).
fn first_divergence(a: &[SuperstepTrace], b: &[SuperstepTrace]) -> usize {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return i;
        }
    }
    common
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_sim::{IdealNetwork, Machine, UniformCompute};
    use rand::RngExt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn run_ring(extra_steps: usize) -> u64 {
        let mut m = Machine::new(
            Box::new(IdealNetwork),
            Arc::new(UniformCompute::test_model()),
            vec![0u32; 8],
            42,
        );
        m.superstep(|ctx| {
            let p = ctx.nprocs();
            let draw: u32 = ctx.rng().random_range(0..1000);
            ctx.send_word_u32((ctx.pid() + 1) % p, draw);
        });
        let mut d = Digest::new();
        m.superstep(|ctx| {
            let vals: Vec<u32> = ctx.msgs().iter().map(|m| m.as_u32s()[0]).collect();
            for v in vals {
                *ctx.state = v;
            }
        });
        for _ in 0..extra_steps {
            m.sync();
        }
        for s in m.states() {
            d.push_u32s(&[*s]);
        }
        d.finish()
    }

    #[test]
    fn d01_d02_clean_on_a_deterministic_run() {
        let v = audit_determinism("ring", || run_ring(0));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn d01_fires_when_results_depend_on_the_run() {
        // Deliberately nondeterministic "result": changes on every call.
        let calls = AtomicUsize::new(0);
        let v = audit_determinism("counter", || {
            run_ring(0);
            calls.fetch_add(1, Ordering::SeqCst) as u64
        });
        let rules: Vec<RuleId> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RuleId::StateDigest), "{v:?}");
        assert!(
            !rules.contains(&RuleId::TraceDigest),
            "traces were identical: {v:?}"
        );
    }

    #[test]
    fn d02_fires_when_the_superstep_structure_drifts() {
        let calls = AtomicUsize::new(0);
        let v = audit_determinism("drift", || {
            // Second invocation executes one extra superstep.
            let extra = calls.fetch_add(1, Ordering::SeqCst);
            run_ring(extra);
            0
        });
        let rules: Vec<RuleId> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RuleId::TraceDigest), "{v:?}");
        let d02 = v.iter().find(|x| x.rule == RuleId::TraceDigest).unwrap();
        assert_eq!(d02.step, 2, "diverges where the extra sync appears");
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = Digest::new();
        a.push_u32s(&[1, 2, 3]);
        let mut b = Digest::new();
        b.push_u32s(&[3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.push_u32s(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn trace_digest_covers_every_field() {
        let (_, t1) = collect_traces(|| run_ring(0));
        let mut t2 = t1.clone();
        t2[0].h_send += 1;
        assert_ne!(digest_traces(&t1), digest_traces(&t2));
        let mut t3 = t1.clone();
        t3[0].block_bytes_sum += 1;
        assert_ne!(digest_traces(&t1), digest_traces(&t3));
    }
}
