//! Communication disciplines: what a model's runtime rules allow.
//!
//! The paper's models are not just cost formulas — each implies a message
//! *protocol*. MP-BSP programs on the MasPar must decompose every
//! h-relation into permutation rounds (router steps accept one word per
//! destination); the MP-BPRAM is single-port (one block in, one block out,
//! per processor per step). A [`Discipline`] captures the subset of those
//! rules a given algorithm variant has signed up for, so the protocol
//! checker knows which observations are violations and which are simply
//! priced (a deliberately naive schedule *contends*, and the simulator
//! charges it for that — see Fig. 4 of the paper).

/// The runtime protocol an algorithm variant promises to follow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Discipline {
    /// Short label used in violation details and test output.
    pub name: &'static str,
    /// Individual word messages allowed (rule R03).
    pub allow_words: bool,
    /// Bulk block transfers allowed (rule R03).
    pub allow_blocks: bool,
    /// Xnet neighbour-grid transfers allowed (rule R03).
    pub allow_xnet: bool,
    /// Every word round must be a (partial) permutation — no destination
    /// receives two words in one round (rule R04, MP-BSP).
    pub forbid_concurrent_writes: bool,
    /// Every block/xnet round must be single-port on the receive side —
    /// at most one block converging on a destination (rule R06, MP-BPRAM).
    pub single_port_blocks: bool,
}

impl Discipline {
    /// Plain BSP word traffic: concurrent arrivals are priced, not wrong.
    pub fn bsp_words() -> Self {
        Discipline {
            name: "bsp-words",
            allow_words: true,
            allow_blocks: false,
            allow_xnet: false,
            forbid_concurrent_writes: false,
            single_port_blocks: false,
        }
    }

    /// Strict MP-BSP: word traffic only, staggered into permutation rounds.
    pub fn mp_bsp() -> Self {
        Discipline {
            name: "mp-bsp",
            allow_words: true,
            allow_blocks: false,
            allow_xnet: false,
            forbid_concurrent_writes: true,
            single_port_blocks: false,
        }
    }

    /// Strict MP-BPRAM: block transfers only, single-port per round.
    pub fn bpram() -> Self {
        Discipline {
            name: "bpram",
            allow_words: false,
            allow_blocks: true,
            allow_xnet: false,
            forbid_concurrent_writes: false,
            single_port_blocks: true,
        }
    }

    /// Block transfers without the single-port promise (e.g. the vendor
    /// SUMMA's deliberately unstaggered broadcasts, or data-dependent
    /// routing where senders cannot align their rounds).
    pub fn blocks_relaxed() -> Self {
        Discipline {
            name: "blocks-relaxed",
            allow_words: false,
            allow_blocks: true,
            allow_xnet: false,
            forbid_concurrent_writes: false,
            single_port_blocks: false,
        }
    }

    /// Xnet neighbour-grid traffic (MasPar Cannon): shifts are
    /// permutations, so single-port is enforced.
    pub fn xnet_grid() -> Self {
        Discipline {
            name: "xnet-grid",
            allow_words: false,
            allow_blocks: false,
            allow_xnet: true,
            forbid_concurrent_writes: true,
            single_port_blocks: true,
        }
    }

    /// Everything allowed, nothing enforced beyond the universal rules
    /// (R01/R02/R05/R07 always apply).
    pub fn any() -> Self {
        Discipline {
            name: "any",
            allow_words: true,
            allow_blocks: true,
            allow_xnet: true,
            forbid_concurrent_writes: false,
            single_port_blocks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_encode_the_models() {
        assert!(Discipline::mp_bsp().forbid_concurrent_writes);
        assert!(!Discipline::bsp_words().forbid_concurrent_writes);
        assert!(Discipline::bpram().single_port_blocks);
        assert!(!Discipline::blocks_relaxed().single_port_blocks);
        assert!(Discipline::xnet_grid().allow_xnet);
        assert!(!Discipline::bpram().allow_words);
        let any = Discipline::any();
        assert!(any.allow_words && any.allow_blocks && any.allow_xnet);
        assert!(!any.forbid_concurrent_writes && !any.single_port_blocks);
    }
}
