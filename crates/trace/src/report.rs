//! `TRACE_report.json`: per-run cost attribution in machine-readable,
//! *byte-deterministic* JSON.
//!
//! The committed report is a CI drift gate (regenerate, `git diff
//! --exit-code`), so it may only contain simulated quantities: clocks,
//! cost terms, record counts, memo counters. Wall-clock phase totals are
//! inherently non-deterministic and are therefore opt-in
//! ([`RunRecord::wall`], `None` in the committed artifact) — they belong
//! in the Chrome export and on stderr, not in the gate.
//!
//! Float formatting uses Rust's default `Display` for `f64` (shortest
//! round-trip decimal): identical bits render identically, and every
//! value here is produced by a fully deterministic simulation.

use pcm_sim::cache::CacheStats;
use pcm_sim::{NetTerms, PhaseNanos};

/// Schema tag written into the report.
pub const SCHEMA: &str = "pcm-trace-report/v1";

/// One replayed algorithm×machine×(n,p) point.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Algorithm family (registry name).
    pub family: String,
    /// Variant within the family.
    pub variant: String,
    /// Platform name.
    pub machine: String,
    /// Problem size.
    pub n: usize,
    /// Processor count.
    pub p: usize,
    /// Result matched the sequential reference.
    pub verified: bool,
    /// Per-step attribution reproduced the clock bit-identically.
    pub exact: bool,
    /// Final simulated clock, µs.
    pub total_us: f64,
    /// Σ compute term (the model's `s·w` side), µs.
    pub compute_us: f64,
    /// Σ communication term (route + barrier: `g·h` + `L`), µs.
    pub comm_us: f64,
    /// Barrier (`L`) share of `comm_us`, from the network's cost terms.
    pub barrier_us: f64,
    /// Supersteps observed.
    pub steps: u64,
    /// Supersteps that priced a bare barrier.
    pub barrier_steps: u64,
    /// Total send records.
    pub records: u64,
    /// Deterministic network cost-term counters, if the model reports them.
    pub terms: Option<NetTerms>,
    /// Route-memo counters, if the model memoizes.
    pub memo: Option<CacheStats>,
    /// Wall-clock engine-phase totals (ns). `None` in the committed
    /// report; `Some` only for local diagnostics.
    pub wall: Option<PhaseNanos>,
}

impl RunRecord {
    /// Route (`g·h`) share of `comm_us`: whatever the barrier term does
    /// not account for.
    pub fn net_us(&self) -> f64 {
        self.comm_us - self.barrier_us
    }
}

/// The full report: every replayed point plus the replay configuration.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Seed every replay used.
    pub seed: u64,
    /// Exchange shard count the replays pinned (1 ⇒ deterministic order).
    pub shards: usize,
    /// The replayed points.
    pub runs: Vec<RunRecord>,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceReport {
    /// `true` iff every run verified and attributed exactly.
    pub fn all_exact(&self) -> bool {
        self.runs.iter().all(|r| r.verified && r.exact)
    }

    /// Renders the deterministic JSON document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"config\": {{ \"seed\": {}, \"exchange_shards\": {} }},\n",
            self.seed, self.shards
        ));
        s.push_str(&format!("  \"all_exact\": {},\n", self.all_exact()));
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"point\": \"{}/{}/{}/n{}/p{}\",\n",
                json_escape(&r.family),
                json_escape(&r.variant),
                json_escape(&r.machine),
                r.n,
                r.p
            ));
            s.push_str(&format!(
                "      \"verified\": {}, \"exact\": {},\n",
                r.verified, r.exact
            ));
            s.push_str(&format!(
                "      \"cost_us\": {{ \"total\": {}, \"compute\": {}, \"comm\": {}, \"barrier\": {}, \"net\": {} }},\n",
                r.total_us, r.compute_us, r.comm_us, r.barrier_us, r.net_us()
            ));
            s.push_str(&format!(
                "      \"steps\": {{ \"total\": {}, \"barrier_only\": {}, \"records\": {} }}",
                r.steps, r.barrier_steps, r.records
            ));
            if let Some(t) = r.terms {
                s.push_str(&format!(
                    ",\n      \"net_terms\": {{ \"routes\": {}, \"barriers\": {}, \"barrier_us\": {}, \"router_rounds\": {}, \"router_passes\": {}, \"router_min_passes\": {} }}",
                    t.routes, t.barriers, t.barrier_us, t.router_rounds, t.router_passes, t.router_min_passes
                ));
            }
            if let Some(m) = r.memo {
                s.push_str(&format!(
                    ",\n      \"route_memo\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"bypasses\": {} }}",
                    m.hits, m.misses, m.evictions, m.bypasses
                ));
            }
            if let Some(w) = r.wall {
                s.push_str(&format!(
                    ",\n      \"wall_ns\": {{ \"compute\": {}, \"scatter\": {}, \"price\": {}, \"gather\": {}, \"recycle\": {} }}",
                    w.compute, w.scatter, w.price, w.gather, w.recycle
                ));
            }
            s.push_str(&format!("\n    }}{comma}\n"));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            family: String::from("matmul"),
            variant: String::from("BspStaggered"),
            machine: String::from("MasPar MP-1"),
            n: 8,
            p: 16,
            verified: true,
            exact: true,
            total_us: 123.5,
            compute_us: 100.0,
            comm_us: 23.5,
            barrier_us: 3.5,
            steps: 7,
            barrier_steps: 1,
            records: 96,
            terms: None,
            memo: None,
            wall: None,
        }
    }

    #[test]
    fn renders_deterministically() {
        let rep = TraceReport {
            seed: 2026,
            shards: 1,
            runs: vec![record()],
        };
        let a = rep.render();
        let b = rep.render();
        assert_eq!(a, b, "identical inputs must render identical bytes");
        assert!(a.contains("\"schema\": \"pcm-trace-report/v1\""));
        assert!(a.contains("matmul/BspStaggered/MasPar MP-1/n8/p16"));
        assert!(a.contains("\"net\": 20"), "net = comm - barrier");
        assert!(
            !a.contains("wall_ns"),
            "committed form carries no wall time"
        );
    }

    #[test]
    fn wall_section_is_opt_in() {
        let mut r = record();
        r.wall = Some(PhaseNanos {
            compute: 10,
            scatter: 0,
            price: 5,
            gather: 2,
            recycle: 0,
        });
        let rep = TraceReport {
            seed: 1,
            shards: 1,
            runs: vec![r],
        };
        assert!(rep.render().contains("\"wall_ns\""));
    }

    #[test]
    fn all_exact_requires_both_flags() {
        let mut bad = record();
        bad.exact = false;
        let rep = TraceReport {
            seed: 1,
            shards: 1,
            runs: vec![record(), bad],
        };
        assert!(!rep.all_exact());
        assert!(rep.render().contains("\"all_exact\": false"));
    }
}
