//! Monotonic counters and fixed-bucket log2 histograms, snapshotable
//! mid-run.
//!
//! Both primitives are fixed-size atomics: recording never allocates and
//! never blocks, so they can sit on the superstep hot path. Counters
//! saturate at `u64::MAX` instead of wrapping — a saturated counter reads
//! as "at least this many", a wrapped one reads as a lie.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonic, saturating counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `v`, saturating at `u64::MAX`.
    pub fn add(&self, v: u64) {
        if v == 0 {
            return;
        }
        // fetch_update loops only under contention; saturation makes the
        // counter sticky at MAX rather than wrapping to a small number.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(v))
            });
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` values: bucket 0 counts zeros,
/// bucket `k ≥ 1` counts values with `floor(log2(v)) == k - 1`, i.e.
/// `v ∈ [2^(k-1), 2^k)`.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index `v` falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one observation of `v` (saturating per-bucket count).
    pub fn record(&self, v: u64) {
        let b = &self.buckets[Self::bucket_of(v)];
        let _ = b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_add(1))
        });
    }

    /// Copies the current bucket counts.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations recorded (sum over buckets, saturating).
    pub fn total(&self) -> u64 {
        self.snapshot()
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Highest non-empty bucket, if any (an upper-bound estimate of the
    /// largest observed value: `2^(idx) - 1`-ish granularity).
    pub fn max_bucket(&self) -> Option<usize> {
        let snap = self.snapshot();
        (0..HIST_BUCKETS).rev().find(|&i| snap[i] > 0)
    }
}

/// The named metric set the tracing layer maintains for one run. All
/// slots are preregistered — recording is field access, not a map lookup,
/// which keeps the hot path allocation- and hash-free.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Supersteps observed.
    pub supersteps: Counter,
    /// Supersteps that priced a bare barrier (no send records).
    pub barrier_steps: Counter,
    /// Total send records across supersteps.
    pub records: Counter,
    /// Route-memo hits/misses/evictions/bypasses (cumulative deltas).
    pub memo_hits: Counter,
    /// See `memo_hits`.
    pub memo_misses: Counter,
    /// See `memo_hits`.
    pub memo_evictions: Counter,
    /// See `memo_hits`.
    pub memo_bypasses: Counter,
    /// Per-superstep send-record counts.
    pub step_records: Log2Histogram,
    /// Per-superstep max-shard record counts (sharded path only).
    pub shard_max_records: Log2Histogram,
}

/// A plain-data copy of [`Metrics`] taken mid-run or at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub supersteps: u64,
    pub barrier_steps: u64,
    pub records: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub memo_evictions: u64,
    pub memo_bypasses: u64,
    pub step_records: [u64; HIST_BUCKETS],
    pub shard_max_records: [u64; HIST_BUCKETS],
}

impl Metrics {
    /// Fresh metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies every counter and histogram at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            supersteps: self.supersteps.get(),
            barrier_steps: self.barrier_steps.get(),
            records: self.records.get(),
            memo_hits: self.memo_hits.get(),
            memo_misses: self.memo_misses.get(),
            memo_evictions: self.memo_evictions.get(),
            memo_bypasses: self.memo_bypasses.get(),
            step_records: self.step_records.snapshot(),
            shard_max_records: self.shard_max_records.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "must saturate");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "must stay saturated");
    }

    #[test]
    fn counter_ignores_zero_adds() {
        let c = Counter::new();
        c.add(0);
        assert_eq!(c.get(), 0);
        c.add(3);
        c.add(0);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_floor_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Log2Histogram::new();
        for v in [0, 1, 1, 2, 3, 700, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[1], 2);
        assert_eq!(snap[2], 2);
        assert_eq!(snap[10], 1); // 700 ∈ [512, 1024)
        assert_eq!(snap[64], 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.max_bucket(), Some(64));
    }

    #[test]
    fn snapshot_is_stable_mid_run() {
        let m = Metrics::new();
        m.supersteps.add(2);
        m.records.add(100);
        let mid = m.snapshot();
        m.supersteps.add(1);
        m.records.add(50);
        assert_eq!(mid.supersteps, 2, "snapshot must not see later updates");
        assert_eq!(mid.records, 100);
        assert_eq!(m.snapshot().supersteps, 3);
    }
}
