//! Chrome trace-event JSON export (loadable in `chrome://tracing`,
//! Perfetto's legacy importer, or `ui.perfetto.dev`).
//!
//! The primary timeline is *simulated* time: each superstep renders as a
//! complete (`"ph": "X"`) compute slice followed by a comm/barrier slice,
//! with `ts`/`dur` in simulated microseconds — exactly the unit the
//! trace-event format expects. Wall-clock engine-phase nanoseconds and
//! record counts ride along in `args`, and a counter track (`"ph": "C"`)
//! plots records per superstep.

use crate::capture::MachineRun;
use crate::report::json_escape;

/// One machine run to export, with its display name.
pub struct ChromeRun<'a> {
    /// Process name shown in the viewer (e.g. `matmul/BspStaggered @ CM-5`).
    pub name: String,
    /// The captured rows.
    pub run: &'a MachineRun,
}

/// Renders the trace-event JSON document for `runs`. Each run becomes a
/// "process" (pid = index + 1) with one superstep track.
pub fn render(runs: &[ChromeRun<'_>]) -> String {
    let mut s = String::new();
    s.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            s.push_str(",\n");
        }
        *first = false;
        s.push_str(&line);
    };
    for (i, cr) in runs.iter().enumerate() {
        let pid = i + 1;
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&cr.name)
            ),
            &mut first,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\"name\":\"thread_name\",\"args\":{{\"name\":\"supersteps (simulated µs)\"}}}}"
            ),
            &mut first,
        );
        let mut ts = 0.0f64;
        for row in &cr.run.rows {
            let compute = row.compute.as_micros();
            let comm = row.comm.as_micros();
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"name\":\"step {} compute\",\"ts\":{ts},\"dur\":{compute},\"args\":{{\"records\":{},\"wall_ns\":{}}}}}",
                    row.step, row.records, row.phases.compute
                ),
                &mut first,
            );
            let comm_name = if row.records == 0 { "barrier" } else { "comm" };
            let wall_comm = row.phases.total() - row.phases.compute;
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"name\":\"step {} {comm_name}\",\"ts\":{},\"dur\":{comm},\"args\":{{\"records\":{},\"path\":\"{}\",\"shards\":{},\"shard_max\":{},\"wall_ns\":{wall_comm}}}}}",
                    row.step,
                    ts + compute,
                    row.records,
                    row.path.label(),
                    row.shards,
                    row.shard_max
                ),
                &mut first,
            );
            push(
                format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":1,\"name\":\"records\",\"ts\":{ts},\"args\":{{\"records\":{}}}}}",
                    row.records
                ),
                &mut first,
            );
            ts = row.clock.as_micros();
        }
    }
    s.push_str("\n]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{MachineRun, StepRow};
    use pcm_core::SimTime;
    use pcm_sim::{ExchangePath, PhaseNanos};

    fn run() -> MachineRun {
        let mut rows = Vec::new();
        let mut clock = SimTime::ZERO;
        for step in 0..3u32 {
            let compute = SimTime::from_micros(2.0);
            let comm = SimTime::from_micros(1.5);
            clock += compute + comm;
            rows.push(StepRow {
                machine: 0,
                step,
                compute,
                comm,
                clock,
                records: u64::from(step % 2),
                path: ExchangePath::Fused,
                shards: 0,
                shard_max: 0,
                phases: PhaseNanos::default(),
                memo: None,
                terms: None,
            });
        }
        MachineRun {
            p: 4,
            rows,
            dropped: 0,
        }
    }

    #[test]
    fn emits_two_slices_per_step_plus_counter() {
        let r = run();
        let doc = render(&[ChromeRun {
            name: String::from("test/run"),
            run: &r,
        }]);
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 6);
        assert_eq!(doc.matches("\"ph\":\"C\"").count(), 3);
        assert_eq!(doc.matches("\"ph\":\"M\"").count(), 2);
        assert!(doc.contains("step 0 barrier"), "0-record step is a barrier");
        assert!(doc.contains("step 1 comm"));
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn slices_tile_the_simulated_timeline() {
        let r = run();
        let doc = render(&[ChromeRun {
            name: String::from("t"),
            run: &r,
        }]);
        // Step 1's compute slice starts at the clock after step 0 (3.5 µs).
        assert!(doc.contains("\"name\":\"step 1 compute\",\"ts\":3.5,\"dur\":2"));
    }
}
