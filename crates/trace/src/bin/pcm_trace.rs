//! `pcm-trace`: replays pinned algorithm×machine×(n,p) points with
//! tracing on, proves the per-superstep cost attribution reproduces each
//! run's total priced cost bit-identically, and exports the results.
//!
//! Outputs:
//! * `TRACE_report.json` (default `--out`) — deterministic attribution
//!   report, committed and drift-gated in CI (`git diff --exit-code`).
//!   Replays pin one exchange shard and a fixed seed, and the report
//!   carries only simulated quantities, so regeneration is byte-stable.
//! * `--export chrome` — Chrome trace-event JSON (`--trace-out`, default
//!   `TRACE_chrome.json`) viewable in `chrome://tracing` / Perfetto. The
//!   timeline is simulated µs; wall-clock phase ns ride in `args`. Not
//!   committed (wall time is not deterministic).
//!
//! Flags: `--fast` replays a two-family subset (the CI smoke sweep),
//! `--wall` adds wall-phase totals to the report (diagnostics only — do
//! not commit such a report).
//!
//! Exit status is non-zero if any replay fails verification or exact
//! attribution: the binary is itself the strongest runtime gate on the
//! tracing layer.

use pcm_algos::apsp::{self, ApspVariant};
use pcm_algos::lu::{self, LuVariant};
use pcm_algos::matmul::{self, MatmulVariant};
use pcm_algos::primitives::collectives;
use pcm_algos::sort::bitonic::{self, ExchangeMode};
use pcm_algos::sort::parallel_radix::{self, RadixVariant};
use pcm_algos::sort::sample::{self, SampleVariant};
use pcm_algos::vendor;
use pcm_core::fsio::write_atomic;
use pcm_core::SimTime;
use pcm_machines::Platform;
use pcm_sim::with_exchange_shards;
use pcm_trace::{capture, chrome, ChromeRun, MachineRun, RunRecord, TraceReport};

/// Same fixed seed convention as the audit sweep.
const SEED: u64 = 2026;
/// Exchange shards pinned for deterministic delivery order.
const SHARDS: usize = 1;
/// Processor count every replay point uses (valid for all families).
const P: usize = 16;

/// Replay body: runs the algorithm on a platform, returns (clock, verified).
type Replay = Box<dyn Fn(&Platform) -> (SimTime, bool)>;

/// One replayable point: family, variant, size, and the run body.
struct Point {
    family: &'static str,
    variant: &'static str,
    n: usize,
    run: Replay,
}

fn points(fast: bool) -> Vec<Point> {
    let mut pts = vec![
        Point {
            family: "matmul",
            variant: "BspStaggered",
            n: 8,
            run: Box::new(|plat| {
                let r = matmul::run(plat, 8, MatmulVariant::BspStaggered, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "bitonic",
            variant: "Words",
            n: 16,
            run: Box::new(|plat| {
                let r = bitonic::run(plat, 16, ExchangeMode::Words, SEED);
                (r.time, r.verified)
            }),
        },
    ];
    if fast {
        return pts;
    }
    pts.extend([
        Point {
            family: "samplesort",
            variant: "BspWords",
            n: 16,
            run: Box::new(|plat| {
                let r = sample::run(plat, 16, 2, SampleVariant::BspWords, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "parallel_radix",
            variant: "Words",
            n: 32,
            run: Box::new(|plat| {
                let r = parallel_radix::run(plat, 32, RadixVariant::Words, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "apsp",
            variant: "Words",
            n: 8,
            run: Box::new(|plat| {
                let r = apsp::run(plat, 8, ApspVariant::Words, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "lu",
            variant: "Words",
            n: 8,
            run: Box::new(|plat| {
                let r = lu::run(plat, 8, LuVariant::Words, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "vendor",
            variant: "maspar_matmul",
            n: 8,
            run: Box::new(|plat| {
                let r = vendor::maspar_matmul(plat, 8, SEED);
                (r.time, r.verified)
            }),
        },
        Point {
            family: "collectives",
            variant: "all_gather",
            n: 16,
            run: Box::new(|plat| {
                let p = plat.p();
                let n = 16usize;
                let data: Vec<Vec<u32>> = (0..p)
                    .map(|i| {
                        let base = u32::try_from(i * n).expect("test sizes fit u32");
                        (base..base + u32::try_from(n).expect("n fits u32")).collect()
                    })
                    .collect();
                let expect: Vec<u32> = (0..u32::try_from(p * n).expect("p*n fits u32")).collect();
                let mut m = collectives::machine_with(plat, data, SEED);
                collectives::all_gather(&mut m);
                let ok = m.states().iter().all(|s| s.out == expect);
                (m.time(), ok)
            }),
        },
    ]);
    pts
}

/// Replays one point on one platform; returns the report record and the
/// attribution rows of the machine that produced the result.
fn replay(point: &Point, plat: &Platform) -> (RunRecord, Option<MachineRun>) {
    let ((time, verified), mut cap) =
        with_exchange_shards(SHARDS, || capture(|| (point.run)(plat)));
    let idx = {
        let bits = time.as_micros().to_bits();
        cap.runs
            .iter()
            .rposition(|r| r.final_clock().as_micros().to_bits() == bits)
    };
    let run = idx.map(|i| cap.runs.swap_remove(i));
    let (exact, compute_us, comm_us, steps, barrier_steps, records, terms, memo, wall) = match &run
    {
        Some(r) => (
            r.attribution_exact(),
            r.compute_us(),
            r.comm_us(),
            r.rows.len() as u64,
            r.rows.iter().filter(|row| row.records == 0).count() as u64,
            r.rows.iter().map(|row| row.records).sum(),
            r.rows.last().and_then(|row| row.terms),
            r.rows.last().and_then(|row| row.memo),
            Some(r.wall_phase_totals()),
        ),
        None => (false, 0.0, 0.0, 0, 0, 0, None, None, None),
    };
    let record = RunRecord {
        family: point.family.to_string(),
        variant: point.variant.to_string(),
        machine: plat.name().to_string(),
        n: point.n,
        p: P,
        verified,
        exact,
        total_us: time.as_micros(),
        compute_us,
        comm_us,
        barrier_us: terms.map_or(0.0, |t| t.barrier_us),
        steps,
        barrier_steps,
        records,
        terms,
        memo,
        wall,
    };
    (record, run)
}

fn main() {
    let mut out_path = String::from("TRACE_report.json");
    let mut trace_out = String::from("TRACE_chrome.json");
    let mut export_chrome = false;
    let mut fast = false;
    let mut wall = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--trace-out" => trace_out = args.next().expect("--trace-out needs a path"),
            "--export" => {
                let what = args.next().expect("--export needs a format");
                assert_eq!(what, "chrome", "supported export formats: chrome");
                export_chrome = true;
            }
            "--fast" => fast = true,
            "--wall" => wall = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: pcm-trace [--fast] [--wall] [--out FILE] [--export chrome] [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    rayon::stats::enable(true);
    let platforms = [
        Platform::maspar_with(P),
        Platform::gcel_with(P),
        Platform::cm5_with(P),
    ];
    let mut records = Vec::new();
    let mut kept: Vec<(String, MachineRun)> = Vec::new();
    for point in points(fast) {
        for plat in &platforms {
            let label = format!(
                "{}/{} @ {} (n={}, p={P})",
                point.family,
                point.variant,
                plat.name(),
                point.n
            );
            let (mut rec, run) = replay(&point, plat);
            if !wall {
                rec.wall = None;
            }
            eprintln!(
                "  {label}: total {:.3} µs, {} steps, verified={}, exact={}",
                rec.total_us, rec.steps, rec.verified, rec.exact
            );
            records.push(rec);
            if let Some(r) = run {
                kept.push((label, r));
            }
        }
    }

    let report = TraceReport {
        seed: SEED,
        shards: SHARDS,
        runs: records,
    };
    let ok = report.all_exact();

    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>7}",
        "point", "total µs", "compute µs", "comm µs", "exact"
    );
    for r in &report.runs {
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>12.3} {:>7}",
            format!("{}/{}/{}", r.family, r.variant, r.machine),
            r.total_us,
            r.compute_us,
            r.comm_us,
            r.exact
        );
    }

    write_atomic(&out_path, report.render())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("pcm-trace: wrote {out_path}");

    if export_chrome {
        let runs: Vec<ChromeRun<'_>> = kept
            .iter()
            .map(|(name, run)| ChromeRun {
                name: name.clone(),
                run,
            })
            .collect();
        write_atomic(&trace_out, chrome::render(&runs))
            .unwrap_or_else(|e| panic!("cannot write {trace_out}: {e}"));
        eprintln!("pcm-trace: wrote {trace_out} ({} runs)", runs.len());
    }

    // Wall-clock / pool diagnostics: stderr only, never in the report.
    let pool = rayon::stats::snapshot();
    eprintln!(
        "pool: {} jobs, {} helped, {} parks, {} scoped_joins, {} fan_outs, {:.3} ms busy",
        pool.jobs,
        pool.helped_jobs,
        pool.parks,
        pool.scoped_joins,
        pool.fan_outs,
        pool.busy_ns as f64 / 1e6
    );

    if !ok {
        eprintln!("pcm-trace: FAILED — a replay did not verify or did not attribute exactly");
        std::process::exit(1);
    }
}
