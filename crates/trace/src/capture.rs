//! The bridge between `pcm-sim`'s probe hook and this crate's storage:
//! a preallocated per-machine row log, the multi-lane event sink, and the
//! metric set, all filled by a [`SuperstepProbe`] implementation.
//!
//! Everything a probe touches per superstep was allocated when the
//! machine was constructed (rows, lanes, scratch), so the simulator's
//! zero-allocation steady state holds with tracing enabled — the property
//! `tests/hotpath_alloc.rs` gates.

use std::cell::RefCell;
use std::rc::Rc;

use pcm_core::SimTime;
use pcm_sim::cache::CacheStats;
use pcm_sim::{with_probe, ExchangePath, NetTerms, PhaseNanos, StepObs, SuperstepProbe};

use crate::event::{EventKind, TraceEvent};
use crate::metrics::Metrics;
use crate::sink::TraceSink;

/// Default per-machine row capacity — far above any replayed grid point
/// (the largest sweeps run a few hundred supersteps).
pub const DEFAULT_ROW_CAP: usize = 4096;

/// Default per-lane event capacity (two events per superstep).
pub const DEFAULT_LANE_CAP: usize = 2 * DEFAULT_ROW_CAP;

/// One observed superstep, as recorded for attribution and export.
#[derive(Clone, Copy, Debug)]
pub struct StepRow {
    /// Machine index within the capture (factories are invoked per machine).
    pub machine: u32,
    /// Superstep index within that machine.
    pub step: u32,
    /// Compute time added to the clock.
    pub compute: SimTime,
    /// Communication time added to the clock.
    pub comm: SimTime,
    /// Machine clock after the step.
    pub clock: SimTime,
    /// Send records priced this step.
    pub records: u64,
    /// Exchange engine that ran.
    pub path: ExchangePath,
    /// Shard count (sharded path only).
    pub shards: u32,
    /// Largest per-shard record count (sharded path only).
    pub shard_max: u64,
    /// Wall-clock engine-phase breakdown (diagnostics only).
    pub phases: PhaseNanos,
    /// Cumulative route-memo stats after the step, if the model memoizes.
    pub memo: Option<CacheStats>,
    /// Cumulative network cost-term counters after the step, if reported.
    pub terms: Option<NetTerms>,
}

/// The per-machine row log of one capture.
#[derive(Debug)]
pub struct MachineRun {
    /// Processor count the machine was built with.
    pub p: usize,
    /// Observed supersteps, in order.
    pub rows: Vec<StepRow>,
    /// Rows discarded because the preallocated log filled up. Non-zero
    /// voids the exactness guarantee (and fails [`MachineRun::attribution_exact`]).
    pub dropped: u64,
}

impl MachineRun {
    /// Replays the machine's clock from the per-step attribution, using
    /// the exact expression the simulator uses (`clock += compute + comm`)
    /// so f64 rounding matches addition for addition.
    pub fn folded_clock(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for r in &self.rows {
            t += r.compute + r.comm;
        }
        t
    }

    /// The machine clock after the last observed step.
    pub fn final_clock(&self) -> SimTime {
        self.rows.last().map_or(SimTime::ZERO, |r| r.clock)
    }

    /// `true` iff the per-step attribution reproduces the machine clock
    /// *bit-identically* and no rows were dropped.
    pub fn attribution_exact(&self) -> bool {
        self.dropped == 0
            && self.folded_clock().as_micros().to_bits() == self.final_clock().as_micros().to_bits()
    }

    /// Sum of compute times (reported µs; not part of the exactness gate).
    pub fn compute_us(&self) -> f64 {
        self.rows.iter().map(|r| r.compute.as_micros()).sum()
    }

    /// Sum of communication times (reported µs).
    pub fn comm_us(&self) -> f64 {
        self.rows.iter().map(|r| r.comm.as_micros()).sum()
    }

    /// Total wall nanoseconds per engine phase across steps.
    pub fn wall_phase_totals(&self) -> PhaseNanos {
        let mut t = PhaseNanos::default();
        for r in &self.rows {
            t.compute += r.phases.compute;
            t.scatter += r.phases.scatter;
            t.price += r.phases.price;
            t.gather += r.phases.gather;
            t.recycle += r.phases.recycle;
        }
        t
    }
}

/// Everything one traced scope produced: ordered events, metrics, and the
/// per-machine attribution rows.
#[derive(Debug)]
pub struct Capture {
    /// Multi-lane ring sink (lane = machine index, folding over).
    pub sink: TraceSink,
    /// The run's metric set.
    pub metrics: Metrics,
    /// One entry per machine constructed in the scope, in order.
    pub runs: Vec<MachineRun>,
    row_cap: usize,
}

impl Capture {
    fn new(lanes: usize, row_cap: usize, lane_cap: usize) -> Self {
        Capture {
            sink: TraceSink::new(lanes, lane_cap),
            metrics: Metrics::new(),
            runs: Vec::new(),
            row_cap,
        }
    }

    /// The run whose final clock bit-equals `time`, if any — how callers
    /// find "the machine that produced this result" when an algorithm
    /// constructs more than one.
    pub fn run_matching(&self, time: SimTime) -> Option<&MachineRun> {
        let bits = time.as_micros().to_bits();
        self.runs
            .iter()
            .rev()
            .find(|r| r.final_clock().as_micros().to_bits() == bits)
    }
}

/// The probe installed per machine: writes rows, events and metrics into
/// the shared [`Capture`]. All its storage is preallocated when the
/// machine is constructed.
struct RingProbe {
    shared: Rc<RefCell<Capture>>,
    /// Index of this probe's `MachineRun` (also its sink lane).
    machine: usize,
    /// Clock before the next observed step (for event start times).
    prev_clock: SimTime,
    /// Memo stats at the previous step (for per-step deltas).
    prev_memo: CacheStats,
}

impl SuperstepProbe for RingProbe {
    fn observe(&mut self, obs: &StepObs<'_>) {
        let mut cap = self.shared.borrow_mut();
        let cap = &mut *cap;
        let step = u32::try_from(obs.step).unwrap_or(u32::MAX);
        let records = obs.records as u64; // usize fits in u64
        let shard_max = obs.shard_records.iter().copied().max().unwrap_or(0);

        // Metrics.
        let m = &cap.metrics;
        m.supersteps.inc();
        m.records.add(records);
        if records == 0 {
            m.barrier_steps.inc();
        }
        m.step_records.record(records);
        if obs.path == ExchangePath::Sharded {
            m.shard_max_records.record(shard_max);
        }
        if let Some(cur) = obs.memo {
            let prev = self.prev_memo;
            m.memo_hits.add(cur.hits.saturating_sub(prev.hits));
            m.memo_misses.add(cur.misses.saturating_sub(prev.misses));
            m.memo_evictions
                .add(cur.evictions.saturating_sub(prev.evictions));
            m.memo_bypasses
                .add(cur.bypasses.saturating_sub(prev.bypasses));
            self.prev_memo = cur;
        }

        // Events: a compute slice then a comm/barrier slice, on the
        // simulated timeline.
        let ts = self.prev_clock.as_micros();
        cap.sink.record(
            self.machine,
            TraceEvent {
                seq: 0,
                step,
                lane: 0,
                kind: EventKind::Compute,
                ts_us: ts,
                dur_us: obs.compute.as_micros(),
                a: records,
                b: obs.phases.compute,
            },
        );
        cap.sink.record(
            self.machine,
            TraceEvent {
                seq: 0,
                step,
                lane: 0,
                kind: if records == 0 {
                    EventKind::Barrier
                } else {
                    EventKind::Comm
                },
                ts_us: ts + obs.compute.as_micros(),
                dur_us: obs.comm.as_micros(),
                a: records,
                b: obs.phases.total() - obs.phases.compute,
            },
        );

        // Attribution row.
        let run = &mut cap.runs[self.machine];
        if run.rows.len() < run.rows.capacity() {
            run.rows.push(StepRow {
                machine: u32::try_from(self.machine).unwrap_or(u32::MAX),
                step,
                compute: obs.compute,
                comm: obs.comm,
                clock: obs.clock,
                records,
                path: obs.path,
                shards: u32::try_from(obs.shard_records.len()).unwrap_or(u32::MAX),
                shard_max,
                phases: obs.phases,
                memo: obs.memo,
                terms: obs.terms,
            });
        } else {
            run.dropped += 1;
        }
        self.prev_clock = obs.clock;
    }
}

/// Runs `body` with tracing installed and returns its result plus the
/// filled [`Capture`]. Every machine constructed inside `body` gets its
/// own row log and sink lane (storage allocated at machine construction,
/// not per step).
///
/// Machines must not outlive `body` — the capture is single-owner again
/// when this returns.
pub fn capture<R>(body: impl FnOnce() -> R) -> (R, Capture) {
    capture_sized(DEFAULT_ROW_CAP, DEFAULT_LANE_CAP, body)
}

/// [`capture`] with explicit row/lane capacities (tests use tiny rings).
pub fn capture_sized<R>(row_cap: usize, lane_cap: usize, body: impl FnOnce() -> R) -> (R, Capture) {
    // Lane count must be fixed up front (the sink preallocates); machines
    // beyond the lane budget share lane 0 but keep their own row logs.
    const LANES: usize = 8;
    let shared = Rc::new(RefCell::new(Capture::new(LANES, row_cap, lane_cap)));
    let hook = shared.clone();
    let out = with_probe(
        move |p| {
            let mut cap = hook.borrow_mut();
            let machine = cap.runs.len();
            let row_cap = cap.row_cap;
            cap.runs.push(MachineRun {
                p,
                rows: Vec::with_capacity(row_cap),
                dropped: 0,
            });
            Box::new(RingProbe {
                shared: hook.clone(),
                machine,
                prev_clock: SimTime::ZERO,
                prev_memo: CacheStats::default(),
            })
        },
        body,
    );
    let cap = Rc::try_unwrap(shared)
        .expect("machines must not outlive the capture scope")
        .into_inner();
    (out, cap)
}
