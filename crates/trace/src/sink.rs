//! The multi-lane event sink: per-producer ring buffers stitched back
//! into one globally ordered stream.
//!
//! Producers (one per machine, shard or worker) write to their own
//! [`Lane`] — single-writer, so recording is a plain store — while a
//! shared atomic sequence counter stamps every event with its global
//! order. Lanes therefore never contend on anything but one relaxed
//! `fetch_add`, and the full ordered trace is recovered at export time by
//! a k-way merge on the stamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Lane, TraceEvent};

/// A preallocated, sequence-stamped, multi-lane trace sink.
#[derive(Debug)]
pub struct TraceSink {
    lanes: Vec<Lane>,
    seq: Arc<AtomicU64>,
}

impl TraceSink {
    /// Builds a sink with `lanes` ring buffers of `cap_per_lane` events
    /// each. All storage is allocated here.
    pub fn new(lanes: usize, cap_per_lane: usize) -> Self {
        TraceSink {
            lanes: (0..lanes.max(1))
                .map(|_| Lane::with_capacity(cap_per_lane))
                .collect(),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Claims the next global sequence stamp (relaxed; stamps are for
    /// ordering at merge time, not for synchronization).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Records `ev` into `lane`, stamping `ev.seq` and `ev.lane`.
    /// Allocation-free; out-of-range lanes fold into lane 0.
    pub fn record(&mut self, lane: usize, mut ev: TraceEvent) {
        ev.seq = self.next_seq();
        let idx = if lane < self.lanes.len() { lane } else { 0 };
        ev.lane = u32::try_from(idx).unwrap_or(u32::MAX);
        self.lanes[idx].push(ev);
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Read access to one lane.
    pub fn lane(&self, idx: usize) -> &Lane {
        &self.lanes[idx]
    }

    /// Total surviving events across lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Lane::len).sum()
    }

    /// `true` when no lane holds events.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Lane::is_empty)
    }

    /// Total events lost to ring wraparound across lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(Lane::dropped).sum()
    }

    /// Merges all lanes into one stream ordered by sequence stamp.
    ///
    /// Each lane is already seq-ascending (single writer, monotonic
    /// stamps), so this is a k-way merge: repeatedly take the lane whose
    /// head event has the smallest stamp.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut iters: Vec<_> = self.lanes.iter().map(|l| l.iter().peekable()).collect();
        let mut out = Vec::with_capacity(self.len());
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(ev) = it.peek() {
                    if best.is_none_or(|(_, s)| ev.seq < s) {
                        best = Some((i, ev.seq));
                    }
                }
            }
            match best {
                Some((i, _)) => out.push(*iters[i].next().expect("peeked lane has a head")),
                None => return out,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(step: u32) -> TraceEvent {
        TraceEvent {
            seq: 0,
            step,
            lane: 0,
            kind: EventKind::Comm,
            ts_us: 0.0,
            dur_us: 0.0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn stamps_are_globally_monotonic_across_lanes() {
        let mut sink = TraceSink::new(3, 16);
        for step in 0..12 {
            sink.record((step as usize) % 3, ev(step));
        }
        let merged = sink.merged();
        assert_eq!(merged.len(), 12);
        for (i, e) in merged.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "merge must restore stamp order");
            assert_eq!(e.step, u32::try_from(i).expect("test step fits"));
        }
    }

    #[test]
    fn out_of_order_lane_interleaving_merges_by_stamp() {
        // Simulate shards that drain in bursts: lane 0 records steps
        // {0, 3, 4}, lane 1 {1, 2, 5} — stamps interleave non-uniformly.
        let mut sink = TraceSink::new(2, 8);
        sink.record(0, ev(0));
        sink.record(1, ev(1));
        sink.record(1, ev(2));
        sink.record(0, ev(3));
        sink.record(0, ev(4));
        sink.record(1, ev(5));
        let steps: Vec<u32> = sink.merged().iter().map(|e| e.step).collect();
        assert_eq!(steps, [0, 1, 2, 3, 4, 5]);
        let lanes: Vec<u32> = sink.merged().iter().map(|e| e.lane).collect();
        assert_eq!(lanes, [0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn merge_survives_wraparound_drops() {
        let mut sink = TraceSink::new(2, 2);
        for step in 0..10 {
            sink.record((step as usize) % 2, ev(step));
        }
        assert_eq!(sink.dropped(), 6);
        let merged = sink.merged();
        assert_eq!(merged.len(), 4, "two survivors per two-slot lane");
        // Survivors are the newest per lane, still in global stamp order.
        let steps: Vec<u32> = merged.iter().map(|e| e.step).collect();
        assert_eq!(steps, [6, 7, 8, 9]);
    }

    #[test]
    fn out_of_range_lane_folds_into_lane_zero() {
        let mut sink = TraceSink::new(1, 4);
        sink.record(7, ev(0));
        assert_eq!(sink.lane(0).len(), 1);
        assert_eq!(sink.merged()[0].lane, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Any interleaving of producers across lanes of any ring size
        /// merges back to exactly the sequential reference: the globally
        /// ordered record stream, minus the oldest per-lane events the
        /// rings overwrote.
        #[test]
        fn merge_matches_sequential_reference(
            lanes in 1usize..5,
            cap in 1usize..24,
            assignment in proptest::collection::vec(0usize..6, 0..160),
        ) {
            let mut sink = TraceSink::new(lanes, cap);
            for (i, &lane) in assignment.iter().enumerate() {
                sink.record(lane, ev(u32::try_from(i).expect("test index fits")));
            }

            // Sequential reference: record i got stamp i and landed in
            // lane (folded); each ring keeps its newest `cap` events.
            let mut expected: Vec<u64> = Vec::new();
            for l in 0..sink.lane_count() {
                let stamps: Vec<u64> = assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &lane)| {
                        let idx = if lane < sink.lane_count() { lane } else { 0 };
                        idx == l
                    })
                    .map(|(i, _)| i as u64)
                    .collect();
                let cut = stamps.len().saturating_sub(sink.lane(l).capacity());
                expected.extend(&stamps[cut..]);
            }
            expected.sort_unstable();

            let merged = sink.merged();
            let got: Vec<u64> = merged.iter().map(|e| e.seq).collect();
            proptest::prop_assert_eq!(&got, &expected);
            proptest::prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "strictly seq-ordered");
            proptest::prop_assert_eq!(
                merged.len() as u64 + sink.dropped(),
                assignment.len() as u64,
                "survivors + dropped must account for every record"
            );
        }
    }
}
