//! # pcm-trace — zero-overhead superstep tracing and cost attribution
//!
//! Observability for the simulator: when (and only when) a trace scope is
//! open, every priced superstep is recorded — its exact `compute`/`comm`
//! contribution to the simulated clock, which exchange engine ran, wall
//! time per engine phase, shard imbalance, route-memo and network
//! cost-term counters — into preallocated ring buffers, then attributed
//! and exported.
//!
//! The crate's three invariants, in order of importance:
//!
//! 1. **Zero overhead when off.** Tracing rides `pcm-sim`'s probe hook: an
//!    uninstalled probe costs one `Option` discriminant test per superstep
//!    (and the `trace_guard` feature compiles even that installation path
//!    away). Golden digests, `AUDIT_report.json` and `SYM_report.json` are
//!    byte-identical with the crate compiled in.
//! 2. **Exact attribution.** Folding each step's `(compute, comm)` pair in
//!    order reproduces the machine clock *bit-identically* — the same f64
//!    additions in the same order, checked by [`MachineRun::attribution_exact`]
//!    and gated by `tests/trace.rs` and the `pcm-trace` binary itself.
//! 3. **No steady-state allocation.** Rows, lanes and counters are
//!    preallocated when a machine is constructed; recording a superstep
//!    allocates nothing (`tests/hotpath_alloc.rs` holds with tracing ON).
//!
//! Layers: [`event`]/[`sink`] (ring-buffer event storage with global
//! sequence stamps), [`metrics`] (saturating counters + log2 histograms),
//! [`mod@capture`] (the probe wiring), [`report`] (deterministic
//! `TRACE_report.json`), [`chrome`] (Chrome trace-event / Perfetto
//! export). The `pcm-trace` binary replays pinned grid points and writes
//! the committed report plus optional Chrome traces.

pub mod capture;
pub mod chrome;
pub mod event;
pub mod metrics;
pub mod report;
pub mod sink;

pub use capture::{capture, capture_sized, Capture, MachineRun, StepRow};
pub use chrome::ChromeRun;
pub use event::{EventKind, Lane, TraceEvent};
pub use metrics::{Counter, Log2Histogram, Metrics, MetricsSnapshot, HIST_BUCKETS};
pub use report::{RunRecord, TraceReport, SCHEMA};
pub use sink::TraceSink;
