//! Trace events and the preallocated ring buffer (`Lane`) they live in.
//!
//! A [`TraceEvent`] is a fixed-size POD: recording one is a couple of
//! stores into a buffer allocated up front, so the simulator's
//! zero-allocation hot path (`tests/hotpath_alloc.rs`) holds with tracing
//! enabled. When a lane fills it wraps, overwriting the oldest event and
//! counting the loss — a bounded trace of the *end* of a long run beats an
//! unbounded allocation in the middle of one.

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Local computation slice of a superstep (`dur_us` = compute time).
    Compute,
    /// Communication slice of a superstep (`dur_us` = route + barrier).
    Comm,
    /// A bare barrier superstep (no send records).
    Barrier,
}

impl EventKind {
    /// Stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Comm => "comm",
            EventKind::Barrier => "barrier",
        }
    }
}

/// One fixed-size trace record.
///
/// Timestamps are *simulated* microseconds (the clock the paper's cost
/// models advance), not wall time: `ts_us` is the machine clock when the
/// slice starts, `dur_us` its simulated duration. The two payload words
/// carry kind-specific detail (record count, wall nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global sequence stamp (total order across lanes).
    pub seq: u64,
    /// Superstep index.
    pub step: u32,
    /// Producer lane that recorded the event.
    pub lane: u32,
    pub kind: EventKind,
    /// Simulated start time, µs.
    pub ts_us: f64,
    /// Simulated duration, µs.
    pub dur_us: f64,
    /// Kind-specific payload (send records for `Compute`/`Comm`).
    pub a: u64,
    /// Kind-specific payload (wall nanoseconds of the engine phase).
    pub b: u64,
}

/// A single-writer ring buffer of [`TraceEvent`]s.
///
/// All storage is allocated by [`Lane::with_capacity`]; `push` never
/// allocates. Once full, the oldest event is overwritten and `dropped`
/// incremented.
#[derive(Debug)]
pub struct Lane {
    buf: Vec<TraceEvent>,
    /// Ring size. Stored explicitly: `Vec::with_capacity` may round the
    /// allocation up, and the ring must wrap at exactly this many slots.
    cap: usize,
    /// Next write position.
    head: usize,
    dropped: u64,
}

impl Lane {
    /// Preallocates a lane holding up to `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        Lane {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Records an event; overwrites the oldest (and counts it dropped)
    /// when the lane is full. Never allocates after construction.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            self.head = self.buf.len() % self.cap;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Live event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten by wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the surviving events oldest-first (wraparound respected).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        // When full, `head` points at the oldest event; before the first
        // wrap the buffer is already in order from index 0.
        let start = if self.buf.len() < self.cap {
            0
        } else {
            self.head
        };
        let n = self.buf.len();
        (0..n).map(move |i| &self.buf[(start + i) % n.max(1)])
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // events carry exact simulated values
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            step: u32::try_from(seq).expect("test seq fits"),
            lane: 0,
            kind: EventKind::Compute,
            ts_us: seq as f64,
            dur_us: 1.0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut lane = Lane::with_capacity(4);
        for s in 0..4 {
            lane.push(ev(s));
        }
        assert_eq!(lane.len(), 4);
        assert_eq!(lane.dropped(), 0);
        let seqs: Vec<u64> = lane.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3]);

        lane.push(ev(4));
        lane.push(ev(5));
        assert_eq!(lane.len(), 4, "capacity is fixed");
        assert_eq!(lane.dropped(), 2);
        let seqs: Vec<u64> = lane.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4, 5], "oldest events were overwritten");
    }

    #[test]
    fn wraps_many_times_and_stays_ordered() {
        let mut lane = Lane::with_capacity(3);
        for s in 0..100 {
            lane.push(ev(s));
        }
        assert_eq!(lane.dropped(), 97);
        let seqs: Vec<u64> = lane.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [97, 98, 99]);
    }

    #[test]
    fn pushes_never_allocate_after_construction() {
        let mut lane = Lane::with_capacity(8);
        let cap = lane.capacity();
        for s in 0..50 {
            lane.push(ev(s));
            assert_eq!(lane.capacity(), cap, "ring must never reallocate");
        }
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut lane = Lane::with_capacity(0);
        lane.push(ev(0));
        lane.push(ev(1));
        assert_eq!(lane.len(), 1);
        assert_eq!(lane.iter().next().map(|e| e.seq), Some(1));
    }
}
