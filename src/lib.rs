//! # pcm — Parallel Computation Models, quantitatively compared
//!
//! A Rust reproduction of **Juurlink & Wijshoff, "A Quantitative Comparison
//! of Parallel Computation Models" (SPAA 1996)**.
//!
//! The paper validates the BSP, MP-BSP, MP-BPRAM and E-BSP cost models
//! against measurements on three 1990s parallel machines — a 1024-PE MasPar
//! MP-1, a 64-node Parsytec GCel and a 64-node CM-5. This workspace rebuilds
//! the whole experimental apparatus in Rust:
//!
//! * [`sim`] — a superstep-oriented simulator of distributed-memory
//!   machines (virtual processors, ordered message schedules, pluggable
//!   network and compute models),
//! * [`machines`] — calibrated mechanistic models of the three platforms,
//! * [`models`] — the analytic cost models and per-algorithm closed-form
//!   predictors from Section 4 of the paper,
//! * [`algos`] — the model-derived algorithms (matrix multiplication,
//!   bitonic sort, sample sort, all-pairs shortest path) and the
//!   vendor-library analogues of Section 7,
//! * [`calibrate`] — microbenchmarks and least-squares fits that recover
//!   the Table 1 machine parameters,
//! * [`experiments`] — one driver per paper table/figure plus the
//!   `reproduce` CLI,
//! * [`check`] — the sanitizer: runtime protocol rules, model-conformance
//!   linting against each predictor's cost contract, and a determinism
//!   auditor (see the "Sanitizer" section of DESIGN.md),
//! * [`audit`] — the static superstep-schedule verifier: abstract
//!   interpretation of extracted communication plans with cost-bound
//!   certification (see the "Static audit" section of DESIGN.md),
//! * [`sym`] — the symbolic cost-IR verifier: every closed-form predictor
//!   re-expressed as a typed expression and certified for units, domains,
//!   dominance lemmas, ≤ 1 ulp differential agreement, leading terms and
//!   word/block crossovers (see the "Symbolic model verification" section
//!   of DESIGN.md),
//! * [`trace`] — zero-overhead superstep tracing: ring-buffer event
//!   sink, cost-attribution metrics and Chrome-trace/Perfetto export
//!   (see the "Observability" section of DESIGN.md).
//!
//! ## Quickstart
//!
//! ```
//! use pcm::machines::Platform;
//! use pcm::algos::matmul::{self, MatmulVariant};
//! use pcm::models::predict;
//!
//! // Multiply two 128x128 matrices on a simulated 64-node CM-5 with the
//! // staggered BSP algorithm, and compare against the BSP prediction.
//! let cm5 = Platform::cm5();
//! let run = matmul::run(&cm5, 128, MatmulVariant::BspStaggered, 42);
//! let predicted = predict::matmul::bsp(&cm5.model_params(), 128);
//! let err = predicted.relative_error(run.time);
//! assert!(err < 0.35, "BSP prediction should be in the right ballpark");
//! ```

pub use pcm_algos as algos;
pub use pcm_audit as audit;
pub use pcm_calibrate as calibrate;
pub use pcm_check as check;
pub use pcm_core as core;
pub use pcm_experiments as experiments;
pub use pcm_machines as machines;
pub use pcm_models as models;
pub use pcm_sim as sim;
pub use pcm_sym as sym;
pub use pcm_trace as trace;

// Convenient re-exports of the most commonly used types.
pub use pcm_core::{Figure, Series, SimTime, Table};
pub use pcm_machines::Platform;
