//! Sorting study: how message granularity and synchronization change
//! bitonic and sample sort across all three machines — a compact tour of
//! the paper's Figs. 5, 6, 11, 17 and 18.
//!
//! ```text
//! cargo run --release --example sorting_study
//! ```

use pcm::algos::sort::bitonic::{self, ExchangeMode};
use pcm::algos::sort::parallel_radix::{self, RadixVariant};
use pcm::algos::sort::sample::{self, SampleVariant};
use pcm::Platform;

fn per_key(r: &pcm::algos::RunResult, m: usize) -> f64 {
    r.time.as_micros() / m as f64
}

fn main() {
    let seed = 7;
    let m = 1024; // keys per processor

    println!("== bitonic sort, {m} keys per processor ==\n");
    println!(
        "{:8} {:>18} {:>18} {:>18}",
        "machine", "words [µs/key]", "words+resync", "blocks [µs/key]"
    );
    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let words = bitonic::run(&plat, m, ExchangeMode::Words, seed);
        let resync = bitonic::run(&plat, m, ExchangeMode::WordsResync { interval: 256 }, seed);
        let blocks = bitonic::run(&plat, m, ExchangeMode::Block, seed);
        assert!(words.verified && resync.verified && blocks.verified);
        println!(
            "{:8} {:>18.1} {:>18.1} {:>18.1}",
            plat.name(),
            per_key(&words, m),
            per_key(&resync, m),
            per_key(&blocks, m)
        );
    }
    println!(
        "\nGCel words vs blocks is the paper's two-orders-of-magnitude bulk-transfer\n\
         gap (Fig. 6 vs Fig. 11); MasPar words/blocks is the ~2.1x of Fig. 17.\n"
    );

    println!("== sample sort vs bitonic on the GCel (MP-BPRAM), {m} keys/proc ==\n");
    let plat = Platform::gcel();
    let b = bitonic::run(&plat, m, ExchangeMode::Block, seed);
    let s = sample::run(&plat, m, 64, SampleVariant::Bpram, seed);
    let st = sample::run(&plat, m, 64, SampleVariant::BpramStaggered, seed);
    assert!(b.verified && s.verified && st.verified);
    println!("bitonic:                  {:>10.1} µs/key", per_key(&b, m));
    println!(
        "sample sort (single-port): {:>9.1} µs/key  (max bucket {})",
        per_key(&s, m),
        s.stats.max_bucket
    );
    println!(
        "sample sort (staggered):   {:>9.1} µs/key  (max bucket {})",
        per_key(&st, m),
        st.stats.max_bucket
    );
    println!(
        "\nSample sort is asymptotically better but loses here (Fig. 18): the\n\
         single-port routing of the send phase costs ~16·sigma·w·N/P alone."
    );

    println!("\n== third contender: parallel radix sort (blocks) ==\n");
    println!(
        "{:8} {:>18} {:>18}",
        "machine", "bitonic [µs/key]", "radix [µs/key]"
    );
    // (Parallel radix needs P <= 256 bucket managers, so the 1024-PE
    // MasPar sits this one out.)
    for plat in [Platform::gcel(), Platform::cm5()] {
        let b = bitonic::run(&plat, m, ExchangeMode::Block, seed);
        let r = parallel_radix::run(&plat, m, RadixVariant::Blocks, seed);
        assert!(b.verified && r.verified);
        println!(
            "{:8} {:>18.1} {:>18.1}",
            plat.name(),
            per_key(&b, m),
            per_key(&r, m)
        );
    }
    println!(
        "\nCounting-based radix does Theta(1) routing passes instead of\n\
         Theta(log^2 P) exchanges — the CM-2 study's third algorithm, here as an\n\
         extension."
    );

    println!("\n== oversampling sweep (GCel, staggered sample sort) ==\n");
    println!("{:>4} {:>12} {:>14}", "S", "max bucket", "µs/key");
    for s_ratio in [4usize, 16, 64, 256] {
        let r = sample::run(&plat, m, s_ratio, SampleVariant::BpramStaggered, seed);
        assert!(r.verified);
        println!(
            "{:>4} {:>12} {:>14.1}",
            s_ratio,
            r.stats.max_bucket,
            per_key(&r, m)
        );
    }
    println!("\nMore samples flatten the buckets but cost more splitter sorting.");
}
