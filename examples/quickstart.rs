//! Quickstart: run one algorithm on one simulated machine and compare the
//! measurement with the analytic model predictions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcm::algos::matmul::{self, MatmulVariant};
use pcm::models::predict;
use pcm::Platform;

fn main() {
    let seed = 42;
    println!("== pcm quickstart: 256x256 matrix multiplication on a simulated CM-5 ==\n");

    let cm5 = Platform::cm5();
    let params = cm5.model_params();
    println!(
        "machine: {} with P = {} processors (g = {} µs, L = {} µs, sigma = {} µs/B, ell = {} µs)\n",
        cm5.name(),
        cm5.p(),
        params.g,
        params.l,
        params.sigma,
        params.ell
    );

    for (label, variant) in [
        ("naive BSP (identical send order)", MatmulVariant::BspNaive),
        (
            "staggered BSP (short messages)",
            MatmulVariant::BspStaggered,
        ),
        ("MP-BPRAM (block transfers)", MatmulVariant::Bpram),
    ] {
        let r = matmul::run(&cm5, 256, variant, seed);
        assert!(
            r.verified,
            "the product was checked against a sequential reference"
        );
        println!(
            "{label:36} {:>10}   ({:.0} Mflops, comm share {:.0}%)",
            format!("{}", r.time),
            r.stats.mflops,
            100.0 * r.breakdown.comm_fraction()
        );
    }

    println!();
    let bsp = predict::matmul::bsp(&params, 256);
    let bpram = predict::matmul::bpram(&params, 256);
    println!("BSP model predicts      {bsp}");
    println!("MP-BPRAM model predicts {bpram}");
    println!(
        "\nThe naive schedule exceeds the BSP prediction (receiver contention, \
         paper Fig. 4);\nthe staggered schedule matches it; block transfers win \
         (paper Fig. 16)."
    );
}
