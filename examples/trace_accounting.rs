//! Trace accounting: run any program on a simulated machine, then ask
//! every cost model what it *would* have charged — the paper's evaluation
//! methodology as a reusable tool.
//!
//! ```text
//! cargo run --release --example trace_accounting
//! ```

use pcm::algos::run::step_facts;
use pcm::algos::sort::bitonic::{merge_phases, BitonicList, ExchangeMode, SortState};
use pcm::algos::sort::radix::radix_sort;
use pcm::models::account_run;
use pcm::Platform;

fn main() {
    let seed = 17;
    let m = 512;

    println!("== which model explains which machine? (bitonic sort, {m} keys/proc) ==\n");
    println!(
        "{:16} {:>10} {:>10} {:>10} {:>10} {:>10}   best fit",
        "workload", "measured", "BSP", "MP-BSP", "MP-BPRAM", "E-BSP"
    );

    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let params = plat.model_params();
        for (label, mode) in [
            ("words", ExchangeMode::Words),
            ("blocks", ExchangeMode::Block),
        ] {
            // Run the merge phases directly so we keep the machine (and
            // its traces).
            let p = plat.p();
            let mut rng = pcm::core::rng::seeded(seed);
            let keys = pcm::core::rng::random_keys(p * m, &mut rng);
            let states: Vec<SortState> = (0..p)
                .map(|i| SortState {
                    keys: keys[i * m..(i + 1) * m].to_vec(),
                    stash: Vec::new(),
                })
                .collect();
            let mut machine = plat.machine(states, seed);
            machine.superstep(|ctx| {
                radix_sort(ctx.state.list_mut());
                ctx.charge_radix_sort(m, 32, 8);
            });
            merge_phases(&mut machine, mode);
            let measured = machine.time();

            let acc = account_run(&params, &step_facts(machine.traces()));
            let (best, err) = acc.best_fit(measured);
            let fmt = |t: pcm::SimTime| format!("{:>9.1}ms", (t + acc.compute).as_millis());
            println!(
                "{:16} {:>9.1}ms {} {} {} {}   {} ({:.0}% off)",
                format!("{} {label}", plat.name()),
                measured.as_millis(),
                fmt(acc.bsp),
                fmt(acc.mp_bsp),
                fmt(acc.bpram),
                fmt(acc.ebsp),
                best,
                err * 100.0
            );
        }
    }

    println!(
        "\nReading the table: block workloads are explained by the MP-BPRAM\n\
         everywhere; the MasPar's word workload runs *below* every model's charge\n\
         (the router's cheap bit-flip pattern, paper Fig. 5); the GCel word\n\
         workload tracks (MP-)BSP once drift is out of the picture."
    );
}
