//! Build your own machine: plug a custom network model into the simulator
//! and watch how the paper's conclusions shift with the architecture.
//!
//! Here we compare bitonic sort on three machines that differ only in the
//! network: a textbook BSP machine with GCel-like parameters, one with a
//! 10x cheaper per-message cost, and one with free synchronization.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use std::sync::Arc;

use pcm::algos::sort::radix::radix_sort;
use pcm::sim::{Machine, TextbookBspNetwork, UniformCompute};

/// A tiny SPMD program written directly against the simulator API:
/// odd-even transposition sort over the processors' single values.
fn odd_even_sort(machine: &mut Machine<Vec<u32>>) {
    let p = machine.nprocs();
    for phase in 0..p {
        machine.superstep(move |ctx| {
            let pid = ctx.pid();
            let partner = if (pid + phase) % 2 == 0 {
                pid.checked_add(1)
            } else {
                pid.checked_sub(1)
            };
            if let Some(partner) = partner.filter(|&q| q < ctx.nprocs()) {
                let vals = ctx.state.clone();
                ctx.send_words_u32(partner, &vals);
            }
        });
        machine.superstep(move |ctx| {
            let pid = ctx.pid();
            let incoming = ctx.msgs().first().map(|msg| (msg.src, msg.as_u32s()));
            if let Some((src, theirs)) = incoming {
                let mut merged = ctx.state.clone();
                merged.extend(theirs);
                radix_sort(&mut merged);
                let keep = ctx.state.len();
                ctx.charge_merge(keep as u64);
                *ctx.state = if pid < src {
                    merged[..keep].to_vec()
                } else {
                    merged[merged.len() - keep..].to_vec()
                };
            }
        });
    }
}

fn run_on(label: &str, net: TextbookBspNetwork) {
    let p = 16;
    let m = 64;
    let mut rng = pcm::core::rng::seeded(3);
    let keys = pcm::core::rng::random_keys(p * m, &mut rng);
    let states: Vec<Vec<u32>> = (0..p)
        .map(|i| {
            let mut v = keys[i * m..(i + 1) * m].to_vec();
            radix_sort(&mut v);
            v
        })
        .collect();
    let mut machine = Machine::new(
        Box::new(net),
        Arc::new(UniformCompute {
            alpha: 5.0,
            word: 4,
            copy: 0.5,
            radix: (1.2, 2.4),
        }),
        states,
        9,
    );
    odd_even_sort(&mut machine);
    let sorted: Vec<u32> = machine.states().iter().flatten().copied().collect();
    let mut expect = keys;
    expect.sort_unstable();
    assert_eq!(sorted, expect, "odd-even transposition must sort");
    println!(
        "{label:42} {:>12}   ({} supersteps)",
        format!("{}", machine.time()),
        machine.supersteps()
    );
}

fn main() {
    println!("== odd-even transposition sort on three custom machines ==\n");
    run_on(
        "GCel-like (g=4480, L=5100)",
        TextbookBspNetwork {
            g: 4480.0,
            l: 5100.0,
            sigma: 9.3,
            ell: 6900.0,
        },
    );
    run_on(
        "10x cheaper messages (g=448)",
        TextbookBspNetwork {
            g: 448.0,
            l: 5100.0,
            sigma: 9.3,
            ell: 6900.0,
        },
    );
    run_on(
        "free synchronization (L=0)",
        TextbookBspNetwork {
            g: 4480.0,
            l: 0.0,
            sigma: 9.3,
            ell: 6900.0,
        },
    );
    println!(
        "\nOdd-even transposition needs Theta(P) supersteps, so the L term matters\n\
         as much as bandwidth — exactly the trade-off the BSP parameters expose."
    );
}
