//! Model shoot-out: evaluate the same workloads under every cost model —
//! BSP, MP-BSP, MP-BPRAM, E-BSP, and the LogP/LogGP extensions — against
//! the simulated measurements.
//!
//! ```text
//! cargo run --release --example model_shootout
//! ```

use pcm::algos::matmul::{self, MatmulVariant};
use pcm::algos::sort::bitonic::{self, ExchangeMode};
use pcm::models::{predict, LogGP, LogP};
use pcm::Platform;

fn err(predicted: pcm::SimTime, measured: pcm::SimTime) -> String {
    format!("{:+.0}%", 100.0 * (predicted / measured - 1.0))
}

fn main() {
    let seed = 23;

    println!("== which model predicts which machine? ==");
    println!("(prediction error, positive = overestimate)\n");

    println!("--- matrix multiplication, N = 256 (CM-5) / N = 300 (MasPar) ---\n");
    {
        let plat = Platform::cm5();
        let params = plat.model_params();
        let n = 256;
        let words = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        let blocks = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        assert!(words.verified && blocks.verified);
        println!(
            "CM-5   short messages: measured {}, BSP {}",
            words.time,
            err(predict::matmul::bsp(&params, n), words.time)
        );
        println!(
            "CM-5   block transfer: measured {}, MP-BPRAM {}",
            blocks.time,
            err(predict::matmul::bpram(&params, n), blocks.time)
        );
    }
    {
        let plat = Platform::maspar();
        let params = plat.model_params();
        let n = 300;
        let words = matmul::run(&plat, n, MatmulVariant::BspStaggered, seed);
        let blocks = matmul::run(&plat, n, MatmulVariant::Bpram, seed);
        assert!(words.verified && blocks.verified);
        println!(
            "MasPar short messages: measured {}, MP-BSP {}",
            words.time,
            err(predict::matmul::mp_bsp(&params, n), words.time)
        );
        println!(
            "MasPar block transfer: measured {}, MP-BPRAM {}",
            blocks.time,
            err(predict::matmul::bpram(&params, n), blocks.time)
        );
    }

    println!("\n--- bitonic sort, 512 keys/processor ---\n");
    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let params = plat.model_params();
        let m = 512;
        let r = bitonic::run(
            &plat,
            m,
            if params.memory_pipelining {
                ExchangeMode::WordsResync { interval: 256 }
            } else {
                ExchangeMode::Words
            },
            seed,
        );
        assert!(r.verified);
        let pred = if params.memory_pipelining {
            predict::bitonic::bsp(&params, m)
        } else {
            predict::bitonic::mp_bsp(&params, m)
        };
        println!(
            "{:7} measured {}, (MP-)BSP {}",
            plat.name(),
            r.time,
            err(pred, r.time)
        );
    }
    println!(
        "\nThe MasPar overestimate is the cheap bit-flip router pattern (Fig. 5);\n\
         the other machines track their models once drift is synchronized away."
    );

    println!("\n--- LogP / LogGP extension (derived parameters) ---\n");
    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let params = plat.model_params();
        let logp = LogP::from_machine(&params);
        let loggp = LogGP::from_machine(&params);
        println!(
            "{:7} LogP(L={:.0}, o={:.1}, g={:.1}, P={})  capacity {}  |  LogGP G={} µs/B, 1 KB message {}",
            plat.name(),
            logp.latency,
            logp.overhead,
            logp.gap,
            logp.p,
            logp.capacity(),
            loggp.big_gap,
            loggp.long_message(1024)
        );
    }
    println!(
        "\nLogP's capacity constraint is the formalism that captures the CM-5\n\
         receiver-contention stall the BSP model missed (paper Sec. 8)."
    );
}
