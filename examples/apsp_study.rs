//! APSP study: where BSP's balanced-communication assumption breaks, and
//! how E-BSP repairs it — the story of the paper's Figs. 12, 13 and 15.
//!
//! ```text
//! cargo run --release --example apsp_study
//! ```

use pcm::algos::apsp::{self, ApspVariant};
use pcm::algos::lu::{self, LuVariant};
use pcm::models::predict;
use pcm::Platform;

fn main() {
    let seed = 11;

    println!("== all-pairs shortest path (blocked Floyd), N = 256 ==\n");
    println!(
        "{:8} {:>12} {:>14} {:>14} {:>14}",
        "machine", "measured", "BSP/MP-BSP", "refined", "refined err"
    );
    for plat in [Platform::maspar(), Platform::gcel(), Platform::cm5()] {
        let n = 256;
        let params = plat.model_params();
        let r = apsp::run(&plat, n, ApspVariant::Words, seed);
        assert!(r.verified, "distances checked against sequential Floyd");
        let (base, refined) = if params.memory_pipelining {
            (
                predict::apsp::bsp(&params, n),
                predict::apsp::gcel_refined(&params, n),
            )
        } else {
            (
                predict::apsp::mp_bsp(&params, n),
                predict::apsp::ebsp(&params, n),
            )
        };
        println!(
            "{:8} {:>11.2}s {:>13.2}s {:>13.2}s {:>13.1}%",
            plat.name(),
            r.time.as_secs(),
            base.as_secs(),
            refined.as_secs(),
            100.0 * refined.relative_error(r.time)
        );
    }

    println!(
        "\nThe MasPar broadcast is unbalanced (only sqrt(P) senders in the scatter),\n\
         so MP-BSP's full-h-relation charge overshoots badly; E-BSP's T_unb\n\
         partial-permutation cost lands close (Fig. 12). On the GCel the g_mscat\n\
         refinement does the same job (Fig. 13). On the CM-5's fat tree, BSP was\n\
         already accurate (Fig. 15) — its refined column equals plain BSP."
    );

    println!("\n== the same skeleton factorizes: blocked LU (extension) ==\n");
    for plat in [Platform::gcel(), Platform::cm5()] {
        let n = 128;
        let lu_r = lu::run(&plat, n, LuVariant::Blocks, seed);
        let ap = apsp::run(&plat, n, ApspVariant::Blocks, seed);
        assert!(lu_r.verified && ap.verified);
        println!(
            "{:8} LU {:>10}   APSP {:>10}   (same row/column broadcast structure)",
            plat.name(),
            format!("{}", lu_r.time),
            format!("{}", ap.time)
        );
    }

    println!("\n== scaling N on the MasPar ==\n");
    let plat = Platform::maspar();
    let params = plat.model_params();
    println!(
        "{:>5} {:>12} {:>14} {:>12}",
        "N", "measured", "MP-BSP", "E-BSP"
    );
    for n in [64usize, 128, 256] {
        let r = apsp::run(&plat, n, ApspVariant::Words, seed);
        assert!(r.verified);
        println!(
            "{:>5} {:>11.2}s {:>13.2}s {:>11.2}s",
            n,
            r.time.as_secs(),
            predict::apsp::mp_bsp(&params, n).as_secs(),
            predict::apsp::ebsp(&params, n).as_secs()
        );
    }
}
